"""Perf-regression tracking over hotspot reports and BENCH_*.json files.

The repo accumulates point-in-time performance documents — the committed
``BENCH_engine/oracle/serving.json`` files and the ``telemetry report
--json`` hotspot dumps.  This module turns them into a *guarded trajectory*:

* :func:`extract_rows` normalizes either document shape into
  ``{row_key: {metric: value}}`` — BENCH cells keyed by their identity
  fields (label, n, engine_mode, ...), hotspot reports keyed per span /
  histogram / counter;
* :func:`diff_rows` compares two extractions under per-metric tolerance
  thresholds, classifying each shared float metric by direction
  (``wall_s`` up is a regression, ``rounds_per_sec`` down is a regression,
  unclassified metrics are reported but never gate);
* :func:`append_history` appends each run's extracted rows to a
  ``BENCH_history.jsonl`` trajectory so the CLI (and CI) can gate on
  "worse than the previous run by more than the threshold".

The CLI entry point is ``repro-dynamic-subgraphs telemetry diff``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "metric_direction",
    "extract_rows",
    "load_perf_document",
    "diff_rows",
    "RegressionReport",
    "format_diff",
    "append_history",
    "load_history",
    "DEFAULT_THRESHOLD",
]

#: Default relative tolerance: a gated metric may move 25% in its bad
#: direction before the diff fails.  CI smoke legs pass a much larger value
#: (timings on shared runners jitter far more than dedicated boxes).
DEFAULT_THRESHOLD = 0.25

_HIGHER_TOKENS = ("per_s", "per_sec", "speedup", "throughput", "qps")
_LOWER_SUFFIXES = ("_s", "_ms", "_us", "_bytes", "_mb")


def metric_direction(name: str) -> Optional[str]:
    """Which way is *worse* for ``name``: returns ``"lower"`` (lower is
    better), ``"higher"`` (higher is better), or ``None`` (informational —
    compared and reported, but never gates)."""
    lowered = name.lower()
    if any(token in lowered for token in _HIGHER_TOKENS):
        return "higher"
    if lowered.endswith(_LOWER_SUFFIXES) or "latency" in lowered:
        return "lower"
    return None


def _is_identity(value: Any) -> bool:
    return isinstance(value, (str, bool)) or (
        isinstance(value, int) and not isinstance(value, bool)
    )


def extract_rows(doc: Mapping[str, Any]) -> Dict[str, Dict[str, float]]:
    """Normalize one perf document into ``{row_key: {metric: float}}``.

    Two shapes are understood:

    * **hotspot reports** (``telemetry report --json``): one row per span
      (``total_s``/``mean_s``/``max_s``), per histogram
      (``mean``/``p50``/``p95``/``p99``/``max``) and per counter;
    * **BENCH files**: each entry of a ``cells`` list (plus a
      ``scale_probe.cells`` list, when present) becomes one row keyed by
      its identity fields — strings/ints/bools — with its float fields as
      the metrics.

    Anything else yields no rows; callers treat that as "nothing to
    compare" and exit with a diagnostic.
    """
    rows: Dict[str, Dict[str, float]] = {}
    if "hotspots" in doc:
        for span_row in doc.get("hotspots", ()):
            metrics = {
                k: float(v)
                for k, v in span_row.items()
                if k != "span" and isinstance(v, (int, float)) and not isinstance(v, bool)
            }
            if metrics:
                rows[f"span {span_row['span']}"] = metrics
        for hist_row in doc.get("histograms", ()):
            metrics = {
                k: float(v)
                for k, v in hist_row.items()
                if k != "histogram"
                and isinstance(v, (int, float))
                and not isinstance(v, bool)
            }
            if metrics:
                rows[f"histogram {hist_row['histogram']}"] = metrics
        for name, value in doc.get("counters", {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                rows[f"counter {name}"] = {"value": float(value)}
        return rows

    cell_lists: List[Sequence[Mapping[str, Any]]] = []
    cells = doc.get("cells")
    if isinstance(cells, list) and all(isinstance(c, Mapping) for c in cells):
        cell_lists.append(cells)
    probe = doc.get("scale_probe")
    if isinstance(probe, Mapping):
        probe_cells = probe.get("cells")
        if isinstance(probe_cells, list) and all(
            isinstance(c, Mapping) for c in probe_cells
        ):
            cell_lists.append([dict(c, scale_probe=True) for c in probe_cells])
    for cell_list in cell_lists:
        for cell in cell_list:
            identity: List[str] = []
            metrics: Dict[str, float] = {}
            for key in sorted(cell):
                value = cell[key]
                if key == "cell_id":
                    continue  # spec hashes churn with spec schema, not perf
                if _is_identity(value):
                    identity.append(f"{key}={value}")
                elif isinstance(value, float):
                    metrics[key] = value
            if metrics:
                rows[" ".join(identity) or f"row{len(rows)}"] = metrics
    return rows


def load_perf_document(path: Path) -> Mapping[str, Any]:
    """Load one perf document for diffing.

    ``path`` may be a JSON file (BENCH or hotspot report) or a result-store
    directory, in which case its ``telemetry/`` snapshots are merged into a
    fresh hotspot report.  Raises :class:`FileNotFoundError` /
    :class:`ValueError` with messages naming the path; the CLI converts
    both into exit 2.
    """
    from .report import build_report, load_snapshots  # local: avoid cycle at import

    path = Path(path)
    if path.is_dir():
        root = path / "telemetry" if (path / "telemetry").is_dir() else path
        if not load_snapshots(root):
            raise ValueError(f"no telemetry snapshots under {root}")
        return build_report(root)
    if not path.is_file():
        raise FileNotFoundError(f"no perf document at {path}")
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"unparseable perf document at {path}: {exc}") from exc
    if not isinstance(doc, Mapping):
        raise ValueError(f"perf document at {path} is not a JSON object")
    return doc


@dataclass
class RegressionReport:
    """Outcome of one baseline-vs-candidate comparison."""

    baseline: str
    candidate: str
    threshold: float
    compared: int = 0
    regressions: List[Dict[str, Any]] = field(default_factory=list)
    improvements: List[Dict[str, Any]] = field(default_factory=list)
    missing_rows: List[str] = field(default_factory=list)
    new_rows: List[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.regressions)


def diff_rows(
    baseline: Mapping[str, Mapping[str, float]],
    candidate: Mapping[str, Mapping[str, float]],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    per_metric: Optional[Mapping[str, float]] = None,
    min_value: float = 1e-6,
    baseline_name: str = "baseline",
    candidate_name: str = "candidate",
) -> RegressionReport:
    """Compare two row extractions under relative tolerance ``threshold``.

    A lower-is-better metric regresses when ``candidate > baseline * (1 +
    t)``; a higher-is-better one when ``candidate < baseline / (1 + t)``,
    with ``t`` the per-metric override (``per_metric[name]``) or the global
    threshold.  Metric pairs where both sides sit below ``min_value`` are
    skipped — relative movement of near-zero timings is pure jitter.
    Directionless metrics never regress; beyond-threshold moves in the
    *good* direction are recorded as improvements.
    """
    per_metric = dict(per_metric or {})
    report = RegressionReport(
        baseline=baseline_name, candidate=candidate_name, threshold=threshold
    )
    report.missing_rows = sorted(set(baseline) - set(candidate))
    report.new_rows = sorted(set(candidate) - set(baseline))
    for row_key in sorted(set(baseline) & set(candidate)):
        base_metrics = baseline[row_key]
        cand_metrics = candidate[row_key]
        for metric in sorted(set(base_metrics) & set(cand_metrics)):
            base = float(base_metrics[metric])
            cand = float(cand_metrics[metric])
            report.compared += 1
            direction = metric_direction(metric)
            if direction is None:
                continue
            if abs(base) < min_value and abs(cand) < min_value:
                continue
            tolerance = per_metric.get(metric, threshold)
            entry = {
                "row": row_key,
                "metric": metric,
                "direction": direction,
                "baseline": base,
                "candidate": cand,
                "ratio": (cand / base) if base else float("inf"),
                "threshold": tolerance,
            }
            if direction == "lower":
                if cand > base * (1.0 + tolerance):
                    report.regressions.append(entry)
                elif base > cand * (1.0 + tolerance):
                    report.improvements.append(entry)
            else:  # higher is better
                if cand * (1.0 + tolerance) < base:
                    report.regressions.append(entry)
                elif base * (1.0 + tolerance) < cand:
                    report.improvements.append(entry)
    return report


def format_diff(report: RegressionReport) -> str:
    """Human-readable rendering of a :class:`RegressionReport`."""
    lines = [
        f"perf diff: {report.baseline} -> {report.candidate} "
        f"(threshold {report.threshold:+.0%} per metric)",
        f"  {report.compared} metric pair(s) compared, "
        f"{len(report.regressions)} regression(s), "
        f"{len(report.improvements)} improvement(s)",
    ]
    for title, entries in (
        ("REGRESSION", report.regressions),
        ("improvement", report.improvements),
    ):
        for entry in entries:
            arrow = "^" if entry["candidate"] > entry["baseline"] else "v"
            lines.append(
                f"  {title}: {entry['row']} :: {entry['metric']} "
                f"{entry['baseline']:.6g} -> {entry['candidate']:.6g} "
                f"({arrow} x{entry['ratio']:.2f}, {entry['direction']} is better, "
                f"tol {entry['threshold']:+.0%})"
            )
    if report.missing_rows:
        lines.append(
            f"  {len(report.missing_rows)} baseline row(s) absent from candidate "
            f"(e.g. {report.missing_rows[0]!r})"
        )
    if report.new_rows:
        lines.append(
            f"  {len(report.new_rows)} new row(s) absent from baseline "
            f"(e.g. {report.new_rows[0]!r})"
        )
    if not report.regressions:
        lines.append("  OK: no metric beyond threshold in its bad direction")
    return "\n".join(lines)


def append_history(path: Path, doc: Mapping[str, Any], *, source: str) -> Dict[str, Any]:
    """Append one run's extracted rows to the ``BENCH_history.jsonl``
    trajectory; returns the record written."""
    record = {
        "ts": time.time(),
        "source": source,
        "rows": extract_rows(doc),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_history(path: Path) -> List[Dict[str, Any]]:
    """All parseable history records, oldest first (torn lines skipped)."""
    records: List[Dict[str, Any]] = []
    try:
        with Path(path).open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and "rows" in record:
                    records.append(record)
    except OSError:
        return []
    return records
