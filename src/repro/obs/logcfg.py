"""Logging configuration for the ``repro.*`` logger hierarchy.

Library modules obtain loggers with ``logging.getLogger(__name__)`` (all
under the ``repro`` root) and never print; the CLI calls
:func:`configure_logging` once at startup to attach a stderr handler at the
requested level.  Keeping configuration here -- and out of library code --
means embedding applications and the test-suite stay in control of handlers.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["configure_logging", "LOG_LEVELS"]

LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


def configure_logging(level: str = "warning", *, stream: Optional[TextIO] = None) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` root logger at ``level``.

    Idempotent: reconfigures the existing handler instead of stacking a new
    one on every call (the CLI dispatches through here once per invocation,
    but tests may call it repeatedly).
    """
    level_name = level.lower()
    if level_name not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {', '.join(LOG_LEVELS)}"
        )
    root = logging.getLogger("repro")
    root.setLevel(getattr(logging, level_name.upper()))
    handler = None
    for existing in root.handlers:
        if getattr(existing, "_repro_cli_handler", False):
            handler = existing
            break
    target = stream if stream is not None else sys.stderr
    if handler is None:
        handler = logging.StreamHandler(target)
        handler._repro_cli_handler = True
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        root.addHandler(handler)
    elif handler.stream is not target:
        try:
            handler.setStream(target)
        except ValueError:
            # The previous stream is already closed (pytest capture teardown
            # swaps and closes stderr between tests); setStream's flush of it
            # fails, but re-pointing the handler is still the right move.
            handler.stream = target
    # Propagation stays on: with our handler attached, logging's lastResort
    # fallback never fires, and root-level handlers (pytest's caplog, an
    # embedding application's own config) keep seeing repro.* records.
    return root
