"""Process-local telemetry: counters, gauges, histograms and span timers.

The repo's headline numbers are *amortized* complexity bounds, but knowing
where wall-clock time goes **inside** a round -- which stage dominates under
which adversary, how large the active set really is, how often the oracle's
dirty-region cache hits -- needs live instrumentation, not end-of-run
aggregates.  This module provides it with one hard constraint, pinned by the
test-suite: telemetry on or off must never perturb the simulation.  All
collection is read-only bookkeeping (monotonic clocks, integer counters), so
:class:`~repro.simulator.metrics.RoundRecord` streams, traces and state
fingerprints are bit-identical either way.

Design:

* :class:`Telemetry` is a registry of **counters** (monotonic ints),
  **gauges** (last-value-wins, any JSON value), fixed-bucket **histograms**
  (:class:`Histogram`) and **spans** (named cumulative timers, nestable and
  exception-safe via :meth:`Telemetry.span`).
* :data:`TELEMETRY` is the module-level singleton every instrumented call
  site reads.  It starts *disabled*; hot loops guard their instrumentation
  with a single ``if TELEMETRY.enabled:`` attribute check, so the disabled
  cost is one branch per call site and the enabled cost never leaks into the
  simulation's observable behaviour.
* :meth:`Telemetry.snapshot` renders everything as one JSON-ready dict; the
  :class:`~repro.obs.sink.TelemetrySink` appends those snapshots as periodic
  JSONL lines which ``repro-dynamic-subgraphs telemetry report`` merges into
  hotspot tables.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Histogram",
    "Telemetry",
    "TELEMETRY",
    "TIME_BUCKETS",
    "SIZE_BUCKETS",
]


def _ladder(decades: Sequence[int], steps: Sequence[float]) -> Tuple[float, ...]:
    return tuple(step * (10.0 ** d) for d in decades for step in steps)


#: Default latency buckets (seconds): a 1-2-5 ladder from 1 microsecond to
#: 100 s.  Fixed buckets keep snapshots mergeable across cells and processes.
TIME_BUCKETS: Tuple[float, ...] = _ladder(range(-6, 3), (1.0, 2.0, 5.0))

#: Default magnitude buckets (set sizes, fan-outs): powers of two up to 2^24.
SIZE_BUCKETS: Tuple[float, ...] = tuple(float(2 ** k) for k in range(25))


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max sidecars.

    ``buckets`` are inclusive upper bounds in increasing order; one implicit
    overflow bucket catches everything larger.  Percentiles are estimated by
    linear interpolation inside the bucket where the requested rank falls
    (the overflow bucket reports the exact observed maximum), which is the
    standard Prometheus-style trade-off: mergeable and O(buckets) memory, at
    the cost of bucket-resolution accuracy.
    """

    __slots__ = ("buckets", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: Sequence[float] = TIME_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError("histogram buckets must be strictly increasing")
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # leftmost bucket with bound >= value
            mid = (lo + hi) // 2
            if self.buckets[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (0..100) from the bucket counts."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if not self.count:
            return 0.0
        rank = (q / 100.0) * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                if i >= len(self.buckets):  # overflow bucket: exact max
                    return float(self.max)
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = self.buckets[i]
                frac = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * frac
                # Exact extremes beat bucket interpolation at the edges.
                return min(max(estimate, float(self.min)), float(self.max))
            cumulative += bucket_count
        return float(self.max)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bucket layouts must match)."""
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_dict(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        hist = cls(data["buckets"])
        counts = [int(c) for c in data["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError("histogram counts do not match the bucket layout")
        hist.counts = counts
        hist.count = int(data["count"])
        hist.total = float(data["sum"])
        hist.min = None if data.get("min") is None else float(data["min"])
        hist.max = None if data.get("max") is None else float(data["max"])
        return hist


class _SpanTimer:
    """Context manager recording one timed section into its telemetry.

    Exception-safe (the duration is recorded in ``__exit__`` regardless of
    how the block ends) and nestable (each instance carries its own start
    time, so overlapping spans of the same or different names never corrupt
    each other).
    """

    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_SpanTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        end = time.perf_counter()
        telemetry = self._telemetry
        telemetry.record_span(self._name, end - self._start)
        tracer = telemetry.tracer
        if tracer is not None:
            tracer.add(self._name, self._start, end)
        return False


class _NoopSpan:
    """Shared do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Telemetry:
    """A process-local registry of counters, gauges, histograms and spans.

    Disabled by default: every mutating method returns immediately after one
    ``enabled`` check, and :meth:`span` hands back a shared no-op context
    manager, so instrumented call sites are safe to leave in hot loops.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.label: Optional[str] = None
        self.sink = None  # duck-typed TelemetrySink (avoid an import cycle)
        self.tracer = None  # duck-typed TraceBuffer; None = tracing off
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, Any] = {}
        self.spans: Dict[str, List[float]] = {}  # name -> [count, total_s, max_s]
        self.histograms: Dict[str, Histogram] = {}
        self.ticks = 0
        self._enabled_at = 0.0
        self._snapshot_seq = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def enable(self, *, sink=None, label: Optional[str] = None, tracer=None) -> None:
        """Reset all state and start collecting (optionally into ``sink``,
        optionally recording trace events into ``tracer``)."""
        self.reset()
        self.enabled = True
        self.sink = sink
        self.label = label
        self.tracer = tracer
        self._enabled_at = time.perf_counter()

    def disable(self) -> None:
        """Stop collecting; flushes a final snapshot through the sink.

        Detaches (but does not clear) the tracer — callers that want the
        buffered events grab ``TELEMETRY.tracer`` *before* disabling.
        """
        if self.sink is not None:
            self.sink.close(self)
            self.sink = None
        self.tracer = None
        self.enabled = False

    def reset(self) -> None:
        """Drop every collected value (does not touch ``enabled``/sink)."""
        self.tracer = None
        self.counters = {}
        self.gauges = {}
        self.spans = {}
        self.histograms = {}
        self.ticks = 0
        self.label = None
        self._enabled_at = time.perf_counter()
        self._snapshot_seq = 0

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self._enabled_at

    # ------------------------------------------------------------------ #
    # Collection
    # ------------------------------------------------------------------ #
    def count(self, name: str, value: int = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: Any) -> None:
        if not self.enabled:
            return
        self.gauges[name] = value

    def observe(self, name: str, value: float, buckets: Sequence[float] = TIME_BUCKETS) -> None:
        if not self.enabled:
            return
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(buckets)
        hist.observe(value)

    def record_span(self, name: str, seconds: float) -> None:
        """Accumulate one timed section (used by :meth:`span` and by hot
        paths that time stages manually with ``perf_counter`` checkpoints)."""
        if not self.enabled:
            return
        stat = self.spans.get(name)
        if stat is None:
            self.spans[name] = [1, seconds, seconds]
        else:
            stat[0] += 1
            stat[1] += seconds
            if seconds > stat[2]:
                stat[2] = seconds

    def span(self, name: str):
        """A nestable, exception-safe ``with``-timer for section ``name``."""
        if not self.enabled:
            return _NOOP_SPAN
        return _SpanTimer(self, name)

    def tick(self) -> None:
        """Mark an iteration boundary (a round, a fuzz schedule, ...).

        Gives the sink a periodic opportunity to flush a snapshot without
        the instrumented code knowing anything about sinks or files.
        """
        if not self.enabled:
            return
        self.ticks += 1
        if self.sink is not None:
            self.sink.maybe_flush(self)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def snapshot(self, *, final: bool = False) -> Dict[str, Any]:
        """Everything collected so far, as one JSON-ready dict."""
        self._snapshot_seq += 1
        return {
            "label": self.label,
            "seq": self._snapshot_seq,
            "final": final,
            "ts": time.time(),
            "elapsed_s": self.elapsed_s,
            "ticks": self.ticks,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": {
                name: {"count": int(stat[0]), "total_s": stat[1], "max_s": stat[2]}
                for name, stat in self.spans.items()
            },
            "histograms": {
                name: hist.to_dict() for name, hist in self.histograms.items()
            },
        }


#: The process-wide singleton every instrumented call site reads.  Starts
#: disabled; the campaign runner / fuzz driver / tests enable it per run.
TELEMETRY = Telemetry()
