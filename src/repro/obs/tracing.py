"""Structured trace events: bounded ring buffer + Chrome trace-event export.

The telemetry registry (:mod:`repro.obs.telemetry`) answers *how much* time
each stage took in aggregate; this module answers *when* — an event-level
timeline of (stage, round, engine mode, worker) intervals that can cross
process boundaries and load straight into Perfetto / ``chrome://tracing``.

Design mirrors the telemetry discipline exactly:

* :class:`TraceBuffer` is a bounded ring of typed events.  Hot call sites
  guard with a single attribute check (``tracer = TELEMETRY.tracer`` then
  ``if tracer is not None:``), so tracing disabled costs one branch and
  tracing enabled is an append of one tuple — collection is read-only
  bookkeeping and never perturbs records, traces, metrics or fingerprints.
* Events store :func:`time.perf_counter` begin/end stamps plus one
  ``(wall0, perf0)`` anchor pair captured at buffer construction.
  ``perf_counter`` is process-local, so cross-process timelines (sharded
  workers, campaign workers) are aligned by converting to wall-clock at
  export time: ``wall = perf + (wall0 - perf0)``.
* The JSONL interchange format is one event dict per line — torn trailing
  lines (a killed worker mid-write) are skipped by the reader, mirroring
  :func:`repro.obs.report.load_final_snapshot`.
* :func:`chrome_trace` renders merged events as Chrome trace-event JSON
  (``ph: "X"`` complete events, microsecond timestamps, one pid per source,
  one tid per worker) which Perfetto loads directly.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "DEFAULT_TRACE_CAPACITY",
    "TRACE_SUFFIX",
    "TraceBuffer",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "load_trace_dir",
    "chrome_trace",
    "build_chrome_trace",
]

#: Default ring capacity.  At ~6 events/round this covers >15k rounds before
#: the ring starts dropping the oldest events (drops are counted, not silent).
DEFAULT_TRACE_CAPACITY = 100_000

#: Suffix for per-cell trace files under a result store's telemetry dir.
TRACE_SUFFIX = ".trace.jsonl"


class TraceBuffer:
    """A bounded ring buffer of timed trace events.

    Events are ``(name, begin, end, round, mode, worker)`` tuples where
    ``begin``/``end`` are ``perf_counter`` stamps in *this* process (or
    pre-converted wall-clock stamps for buffers rebuilt via
    :meth:`from_dict`).  Appending past ``capacity`` evicts the oldest
    event and bumps :attr:`dropped` so exports can report truncation.
    """

    __slots__ = (
        "capacity",
        "run_id",
        "cell_id",
        "engine_mode",
        "worker",
        "wall0",
        "perf0",
        "dropped",
        "_events",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        *,
        run_id: Optional[str] = None,
        cell_id: Optional[str] = None,
        engine_mode: Optional[str] = None,
        worker: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = int(capacity)
        self.run_id = run_id
        self.cell_id = cell_id
        self.engine_mode = engine_mode
        self.worker = worker
        # Wall-clock anchor: perf_counter stamps are process-local, so every
        # buffer remembers one simultaneous (wall, perf) pair for conversion.
        self.wall0 = time.time()
        self.perf0 = time.perf_counter()
        self.dropped = 0
        self._events: deque = deque(maxlen=self.capacity)

    def __len__(self) -> int:
        return len(self._events)

    def add(
        self,
        name: str,
        begin: float,
        end: float,
        round_index: Optional[int] = None,
        mode: Optional[str] = None,
        worker: Optional[int] = None,
    ) -> None:
        """Append one completed interval (perf_counter ``begin``/``end``)."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(
            (
                name,
                begin,
                end,
                round_index,
                mode if mode is not None else self.engine_mode,
                worker if worker is not None else self.worker,
            )
        )

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def events(self) -> List[Dict[str, Any]]:
        """All buffered events as JSON-ready dicts with wall-clock ``ts``."""
        offset = self.wall0 - self.perf0
        out: List[Dict[str, Any]] = []
        for name, begin, end, round_index, mode, worker in self._events:
            event: Dict[str, Any] = {
                "name": name,
                "ts": begin + offset,
                "dur_s": max(0.0, end - begin),
            }
            if round_index is not None:
                event["round"] = round_index
            if mode is not None:
                event["mode"] = mode
            if worker is not None:
                event["worker"] = worker
            out.append(event)
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Ship-ready form (wall-clock events) for pipes / JSON."""
        return {
            "capacity": self.capacity,
            "run_id": self.run_id,
            "cell_id": self.cell_id,
            "dropped": self.dropped,
            "events": self.events(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceBuffer":
        """Rebuild a buffer from :meth:`to_dict` output.

        The rebuilt buffer stores wall-clock stamps directly (its anchor is
        the identity ``wall0 == perf0 == 0``), so it can be re-exported or
        merged into another buffer without double-converting.
        """
        buf = cls(
            int(data.get("capacity", DEFAULT_TRACE_CAPACITY)),
            run_id=data.get("run_id"),
            cell_id=data.get("cell_id"),
        )
        buf.wall0 = 0.0
        buf.perf0 = 0.0
        buf.dropped = int(data.get("dropped", 0))
        for event in data.get("events", ()):
            buf.add(
                event["name"],
                float(event["ts"]),
                float(event["ts"]) + float(event.get("dur_s", 0.0)),
                round_index=event.get("round"),
                mode=event.get("mode"),
                worker=event.get("worker"),
            )
        return buf

    def extend_from_dict(self, data: Mapping[str, Any]) -> int:
        """Merge another buffer's shipped events (e.g. a worker's) into this
        ring, converting their wall-clock stamps back into this process's
        perf_counter frame so a single export pass stays correct.  Returns
        the number of events absorbed."""
        offset = self.perf0 - self.wall0  # wall -> local perf frame
        absorbed = 0
        for event in data.get("events", ()):
            begin = float(event["ts"]) + offset
            self.add(
                event["name"],
                begin,
                begin + float(event.get("dur_s", 0.0)),
                round_index=event.get("round"),
                mode=event.get("mode"),
                worker=event.get("worker"),
            )
            absorbed += 1
        self.dropped += int(data.get("dropped", 0))
        return absorbed


# ---------------------------------------------------------------------- #
# JSONL interchange
# ---------------------------------------------------------------------- #
def write_trace_jsonl(path: Path, buffer: TraceBuffer) -> int:
    """Write one event dict per line; returns the number of events written.

    A leading ``{"meta": ...}`` line carries buffer identity (run/cell ids,
    drop count) so readers can report truncation; readers that only want
    events skip it by shape.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    events = buffer.events()
    with path.open("w", encoding="utf-8") as fh:
        meta = {
            "meta": {
                "run_id": buffer.run_id,
                "cell_id": buffer.cell_id,
                "dropped": buffer.dropped,
                "events": len(events),
            }
        }
        fh.write(json.dumps(meta, sort_keys=True) + "\n")
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return len(events)


def read_trace_jsonl(path: Path) -> List[Dict[str, Any]]:
    """Read trace events back, skipping the meta line and any torn line.

    Mirrors the sink reader's torn-write tolerance: a process killed mid-
    append leaves a truncated final line, which is ignored rather than
    raising.
    """
    events: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a killed process
            if not isinstance(record, dict) or "meta" in record:
                continue
            if "name" in record and "ts" in record:
                events.append(record)
    return events


def load_trace_dir(root: Path) -> Dict[str, List[Dict[str, Any]]]:
    """All ``*.trace.jsonl`` files under ``root`` as ``{source: events}``.

    The source name is the file stem with the ``.trace`` suffix stripped
    (per-cell files are named ``<cell_id>.trace.jsonl``).
    """
    root = Path(root)
    sources: Dict[str, List[Dict[str, Any]]] = {}
    for path in sorted(root.glob(f"*{TRACE_SUFFIX}")):
        name = path.name[: -len(TRACE_SUFFIX)]
        events = read_trace_jsonl(path)
        if events:
            sources[name] = events
    return sources


# ---------------------------------------------------------------------- #
# Chrome trace-event export
# ---------------------------------------------------------------------- #
def chrome_trace(sources: Mapping[str, Sequence[Mapping[str, Any]]]) -> Dict[str, Any]:
    """Render ``{source: events}`` as a Chrome trace-event JSON document.

    Each source (a cell, a serve run) becomes one ``pid``; within a source,
    the coordinator is ``tid 0`` and each shard/campaign worker ``w`` is
    ``tid w + 1``.  Timestamps are microseconds relative to the earliest
    event across all sources, which keeps the numbers small and lines every
    process up on one shared wall-clock axis — exactly what Perfetto needs
    to show shard skew visually.
    """
    t0: Optional[float] = None
    for events in sources.values():
        for event in events:
            ts = float(event["ts"])
            if t0 is None or ts < t0:
                t0 = ts
    t0 = t0 or 0.0

    trace_events: List[Dict[str, Any]] = []
    for pid, (source, events) in enumerate(sorted(sources.items()), start=1):
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": source},
            }
        )
        tids_seen: set = set()
        for event in events:
            worker = event.get("worker")
            tid = 0 if worker is None else int(worker) + 1
            if tid not in tids_seen:
                tids_seen.add(tid)
                trace_events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": pid,
                        "tid": tid,
                        "args": {
                            "name": "coordinator" if tid == 0 else f"worker-{worker}"
                        },
                    }
                )
            name = str(event["name"])
            args: Dict[str, Any] = {}
            if event.get("round") is not None:
                args["round"] = event["round"]
            if event.get("mode") is not None:
                args["mode"] = event["mode"]
            trace_events.append(
                {
                    "ph": "X",
                    "name": name,
                    "cat": name.split(".", 1)[0],
                    "pid": pid,
                    "tid": tid,
                    "ts": (float(event["ts"]) - t0) * 1e6,
                    "dur": float(event.get("dur_s", 0.0)) * 1e6,
                    "args": args,
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def build_chrome_trace(root: Path) -> Dict[str, Any]:
    """Load every trace JSONL under ``root`` and render one Chrome trace.

    Raises :class:`FileNotFoundError` if ``root`` does not exist and
    :class:`ValueError` if it holds no trace events — callers (the CLI)
    turn both into clean exit-2 diagnostics naming the path.
    """
    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"no trace directory at {root}")
    sources = load_trace_dir(root)
    if not sources:
        raise ValueError(f"no trace events under {root} (*{TRACE_SUFFIX})")
    return chrome_trace(sources)
