"""TTY-aware live progress rendering for campaign runs.

:class:`CampaignProgress` receives per-cell start/finish events from the
:class:`~repro.experiments.campaign.CampaignRunner` and renders them either as
a single in-place status line (interactive terminals) or as plain one-line
updates (pipes, CI logs).  It tracks cells done/total, a naive ETA
(``elapsed / done * remaining``) and the slowest cell seen so far -- exactly
the "is this sweep stuck, and on what?" questions a silent run cannot answer.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, TextIO

__all__ = ["CampaignProgress", "format_duration"]


def format_duration(seconds: float) -> str:
    """Render a duration compactly: ``532ms``, ``4.2s``, ``3m12s``, ``2h05m``."""
    if seconds < 0:
        seconds = 0.0
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class CampaignProgress:
    """Renders campaign cell events to a stream.

    Args:
        total: number of cells the run will execute (after resume skips).
        stream: output stream; defaults to stderr so progress never pollutes
            piped table/JSON output on stdout.
        interactive: force in-place (``\\r``) rendering on/off; by default it
            follows ``stream.isatty()``.
    """

    def __init__(
        self,
        total: int,
        *,
        stream: Optional[TextIO] = None,
        interactive: Optional[bool] = None,
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        if interactive is None:
            isatty = getattr(self.stream, "isatty", None)
            interactive = bool(isatty()) if callable(isatty) else False
        self.interactive = interactive
        self.done = 0
        self.failed = 0
        self.running: Dict[str, float] = {}  # cell_id -> start perf_counter
        self.slowest_cell: Optional[str] = None
        self.slowest_duration = 0.0
        self._started_at = time.perf_counter()
        self._line_open = False

    # ------------------------------------------------------------------ #
    # Event sinks (wired to CampaignRunner callbacks)
    # ------------------------------------------------------------------ #
    def cell_started(self, cell_id: str) -> None:
        self.running[cell_id] = time.perf_counter()
        if self.interactive:
            self._render_status()

    def cell_finished(self, record: Dict[str, Any], done: int, total: int) -> None:
        cell_id = record.get("cell_id", "?")
        started = self.running.pop(cell_id, None)
        duration = record.get("duration_s")
        if duration is None and started is not None:
            duration = time.perf_counter() - started
        duration = float(duration) if duration is not None else 0.0
        self.done = done
        self.total = total
        status = record.get("status", "?")
        if status != "ok":
            self.failed += 1
        if duration > self.slowest_duration:
            self.slowest_duration = duration
            self.slowest_cell = cell_id
        if self.interactive:
            self._render_status()
        else:
            self._println(
                f"[{done}/{total}] {cell_id} {status} in {format_duration(duration)}"
                f"{self._eta_suffix()}"
            )

    def close(self) -> None:
        """Finish rendering: clear the live line and print a summary."""
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False
        elapsed = time.perf_counter() - self._started_at
        summary = (
            f"campaign: {self.done}/{self.total} cells in {format_duration(elapsed)}"
        )
        if self.failed:
            summary += f", {self.failed} failed"
        if self.slowest_cell is not None:
            summary += (
                f"; slowest {self.slowest_cell}"
                f" ({format_duration(self.slowest_duration)})"
            )
        self._println(summary)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def _eta_suffix(self) -> str:
        if not self.done or self.done >= self.total:
            return ""
        elapsed = time.perf_counter() - self._started_at
        eta = elapsed / self.done * (self.total - self.done)
        return f" (eta {format_duration(eta)})"

    def _render_status(self) -> None:
        active = ", ".join(sorted(self.running)[:3])
        if len(self.running) > 3:
            active += f", +{len(self.running) - 3}"
        line = f"[{self.done}/{self.total}]"
        if active:
            line += f" running: {active}"
        if self.slowest_cell is not None:
            line += f" | slowest {self.slowest_cell} {format_duration(self.slowest_duration)}"
        line += self._eta_suffix()
        # Pad with spaces so a shorter line fully overwrites a longer one.
        self.stream.write("\r" + line.ljust(100)[:120])
        self.stream.flush()
        self._line_open = True

    def _println(self, text: str) -> None:
        if self._line_open:
            self.stream.write("\r" + " " * 100 + "\r")
            self._line_open = False
        self.stream.write(text + "\n")
        self.stream.flush()
