"""Observability: telemetry registry, sinks, progress rendering, reports.

See :mod:`repro.obs.telemetry` for the zero-overhead-when-disabled design
contract, :mod:`repro.obs.report` for snapshot merging, and the README's
"Observability" section for end-to-end usage.
"""

from .logcfg import LOG_LEVELS, configure_logging
from .progress import CampaignProgress, format_duration
from .report import (
    build_report,
    format_report,
    load_final_snapshot,
    load_snapshots,
    merge_snapshots,
)
from .sink import TelemetrySink
from .telemetry import SIZE_BUCKETS, TELEMETRY, TIME_BUCKETS, Histogram, Telemetry

__all__ = [
    "Histogram",
    "Telemetry",
    "TELEMETRY",
    "TIME_BUCKETS",
    "SIZE_BUCKETS",
    "TelemetrySink",
    "CampaignProgress",
    "format_duration",
    "configure_logging",
    "LOG_LEVELS",
    "build_report",
    "format_report",
    "load_final_snapshot",
    "load_snapshots",
    "merge_snapshots",
]
