"""Observability: telemetry registry, sinks, tracing, reports, regression.

See :mod:`repro.obs.telemetry` for the zero-overhead-when-disabled design
contract, :mod:`repro.obs.tracing` for the trace-event timeline layer,
:mod:`repro.obs.report` for snapshot merging, :mod:`repro.obs.collect` for
cross-process snapshot collection, :mod:`repro.obs.regress` for
perf-regression tracking, and the README's "Observability" section for
end-to-end usage.
"""

from .collect import compute_shard_skew, merge_snapshot_into, record_shard_skew
from .logcfg import LOG_LEVELS, configure_logging
from .progress import CampaignProgress, format_duration
from .regress import (
    DEFAULT_THRESHOLD,
    RegressionReport,
    append_history,
    diff_rows,
    extract_rows,
    format_diff,
    load_history,
    load_perf_document,
    metric_direction,
)
from .report import (
    build_report,
    format_report,
    load_final_snapshot,
    load_snapshots,
    merge_snapshots,
)
from .sink import TelemetrySink
from .telemetry import SIZE_BUCKETS, TELEMETRY, TIME_BUCKETS, Histogram, Telemetry
from .tracing import (
    DEFAULT_TRACE_CAPACITY,
    TRACE_SUFFIX,
    TraceBuffer,
    build_chrome_trace,
    chrome_trace,
    load_trace_dir,
    read_trace_jsonl,
    write_trace_jsonl,
)

__all__ = [
    "Histogram",
    "Telemetry",
    "TELEMETRY",
    "TIME_BUCKETS",
    "SIZE_BUCKETS",
    "TelemetrySink",
    "TraceBuffer",
    "DEFAULT_TRACE_CAPACITY",
    "TRACE_SUFFIX",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "load_trace_dir",
    "chrome_trace",
    "build_chrome_trace",
    "merge_snapshot_into",
    "compute_shard_skew",
    "record_shard_skew",
    "CampaignProgress",
    "format_duration",
    "configure_logging",
    "LOG_LEVELS",
    "build_report",
    "format_report",
    "load_final_snapshot",
    "load_snapshots",
    "merge_snapshots",
    "RegressionReport",
    "DEFAULT_THRESHOLD",
    "metric_direction",
    "extract_rows",
    "load_perf_document",
    "diff_rows",
    "format_diff",
    "append_history",
    "load_history",
]
