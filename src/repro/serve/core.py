"""The core serving monitor: one data structure over an externally-driven graph.

This is the middle layer of the serving subsystem (:mod:`repro.serve`).  It
owns a :class:`~repro.simulator.rounds.RoundEngine` running one of the
paper's data structures on every node of a
:class:`~repro.simulator.network.DynamicNetwork`, advances it one round per
ingested batch, and exposes typed query helpers returning
:class:`MonitorAnswer` objects (definite answer or "still propagating").

It deliberately knows nothing about *where* batches come from (that is the
ingestion layer, :mod:`repro.serve.ingest`) or *who* is asking (standing
queries live in :mod:`repro.serve.subscriptions`); an application that wants
the old synchronous surface uses the
:class:`~repro.monitor.DynamicGraphMonitor` facade, which is this class under
its historical name.

The monitor rides any *serial* engine mode -- ``"dense"``, ``"sparse"``
(default) or ``"columnar"`` -- and produces bit-identical answers, metrics
and state fingerprints under all three.  The process-parallel ``"sharded"``
engine is rejected at construction: it forks worker processes that own the
node state, so in-process queries against ``self.nodes`` would silently read
stale coordinator-side copies.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from ..core import (
    CliqueMembershipNode,
    CliqueQuery,
    CycleListingNode,
    CycleQuery,
    EdgeQuery,
    QueryResult,
    RobustThreeHopNode,
    RobustTwoHopNode,
    TriangleMembershipNode,
    TriangleQuery,
    TwoHopListingNode,
)
from ..obs.telemetry import TELEMETRY
from ..simulator import (
    BandwidthPolicy,
    DynamicNetwork,
    MetricsCollector,
    NodeAlgorithm,
    RoundChanges,
    RoundRecord,
    create_engine,
)
from ..simulator.rounds import ENGINE_MODES

__all__ = ["MonitorAnswer", "ServingMonitor", "STRUCTURES"]

#: The data structures the monitor can run, keyed by a short name.
STRUCTURES = {
    "robust2hop": RobustTwoHopNode,
    "triangle": TriangleMembershipNode,
    "clique": CliqueMembershipNode,
    "robust3hop": RobustThreeHopNode,
    "cycles": CycleListingNode,
    "twohop": TwoHopListingNode,
}


@dataclass(frozen=True)
class MonitorAnswer:
    """Answer of a monitor query.

    Attributes:
        value: the Boolean answer, or ``None`` while the node is inconsistent.
        definite: whether the answer is usable right now.  ``False`` means the
            queried node's data structure is still processing topology changes
            (call :meth:`ServingMonitor.settle` or keep updating and ask
            again later).
    """

    value: Optional[bool]
    definite: bool

    @classmethod
    def from_result(cls, result: QueryResult) -> "MonitorAnswer":
        if result is QueryResult.INCONSISTENT:
            return cls(value=None, definite=False)
        return cls(value=result is QueryResult.TRUE, definite=True)

    def __bool__(self) -> bool:
        return bool(self.value)


class ServingMonitor:
    """Maintain one of the paper's data structures over an externally-driven graph.

    Args:
        n: number of nodes (fixed, as in the model).
        structure: which data structure every node runs -- one of
            ``"robust2hop"``, ``"triangle"``, ``"clique"`` (default),
            ``"robust3hop"``, ``"cycles"``, ``"twohop"`` -- or any
            :class:`~repro.simulator.node.NodeAlgorithm` factory.
        bandwidth_factor: per-link budget multiplier (``factor * ceil(log2 n)``
            bits per round).
        strict_bandwidth: raise if a message exceeds the budget (default).
        engine_mode: ``"sparse"`` (default, activity-proportional rounds),
            ``"dense"`` (reference scheduler) or ``"columnar"`` (vectorized
            message routing); identical results under all three.  The
            process-parallel ``"sharded"`` engine is rejected here -- it moves
            node state into worker processes, where in-process queries cannot
            reach it.
    """

    def __init__(
        self,
        n: int,
        structure: str | type = "clique",
        *,
        bandwidth_factor: int = 8,
        strict_bandwidth: bool = True,
        engine_mode: str = "sparse",
    ) -> None:
        if engine_mode == "sharded":
            raise ValueError(
                "the monitor answers queries from in-process node state, but the "
                "'sharded' engine moves that state into forked worker processes; "
                f"choose one of the serial engine modes {ENGINE_MODES}"
            )
        if isinstance(structure, str):
            try:
                factory = STRUCTURES[structure]
            except KeyError as exc:
                raise ValueError(
                    f"unknown structure {structure!r}; choose from {sorted(STRUCTURES)}"
                ) from exc
        else:
            factory = structure
        self.n = n
        self.structure_name = structure if isinstance(structure, str) else factory.__name__
        self.network = DynamicNetwork(n)
        self.nodes: Dict[int, NodeAlgorithm] = {v: factory(v, n) for v in range(n)}
        self.engine = create_engine(
            engine_mode,
            self.network,
            self.nodes,
            BandwidthPolicy(factor=bandwidth_factor, strict=strict_bandwidth),
            MetricsCollector(),
        )
        self.engine_mode = engine_mode

    # ------------------------------------------------------------------ #
    # Driving the graph
    # ------------------------------------------------------------------ #
    def ingest(self, changes: RoundChanges) -> RoundRecord:
        """Apply one canonical batch and run that communication round.

        This is the serving-layer entry point: the ingestion layer hands the
        monitor one :class:`RoundChanges` batch per round (an empty batch is a
        quiet round that lets earlier changes propagate).
        """
        with TELEMETRY.span("monitor.update"):
            return self.engine.execute_round(changes)

    def update(
        self,
        insert: Iterable[Tuple[int, int]] = (),
        delete: Iterable[Tuple[int, int]] = (),
    ) -> None:
        """Apply one round's edge changes and run that communication round.

        An empty update is allowed and simply gives the structures one more
        round to propagate earlier changes.
        """
        self.ingest(RoundChanges.of(insert=insert, delete=delete))

    def tick(self) -> None:
        """Run one quiet round (no topology changes)."""
        with TELEMETRY.span("monitor.tick"):
            self.engine.execute_quiet_round()

    def settle(self, max_rounds: int = 10_000) -> int:
        """Run quiet rounds until every node is consistent; returns how many were needed."""
        with TELEMETRY.span("monitor.settle"):
            return self.engine.run_until_quiet(max_rounds=max_rounds)

    # ------------------------------------------------------------------ #
    # Graph introspection
    # ------------------------------------------------------------------ #
    @property
    def edges(self) -> FrozenSet[Tuple[int, int]]:
        """The current ground-truth edge set."""
        return self.network.edges

    def has_edge(self, u: int, w: int) -> bool:
        return self.network.has_edge(u, w)

    @property
    def round_index(self) -> int:
        """Index of the last executed round (0 before the first)."""
        return self.network.round_index

    @property
    def all_consistent(self) -> bool:
        """Whether every node could answer queries definitively right now."""
        return self.engine.all_consistent if self.engine.metrics.rounds else True

    @property
    def amortized_round_complexity(self) -> float:
        """The paper's complexity measure accumulated so far."""
        return self.engine.metrics.amortized_round_complexity()

    def metrics_summary(self) -> Dict[str, float]:
        """All accounting metrics (rounds, changes, bits, ...)."""
        return self.engine.metrics.summary()

    def state_fingerprint(self) -> str:
        """One stable digest over every node's full local state.

        Equal across engine modes for the same update stream (the serving
        differential gates rely on this), and cheap enough to include in
        service reports.
        """
        payload = repr([(v, self.nodes[v].state_fingerprint()) for v in range(self.n)])
        return hashlib.sha1(payload.encode()).hexdigest()

    # ------------------------------------------------------------------ #
    # Queries (all answered by the queried node's local state only)
    # ------------------------------------------------------------------ #
    def _query(self, node: int, query) -> MonitorAnswer:
        # Per-query answer latency is the monitoring-service SLO quantity
        # (p50/p95/p99 in the telemetry report), so it gets its own histogram
        # rather than just a span.
        if not TELEMETRY.enabled:
            return MonitorAnswer.from_result(self.nodes[node].query(query))
        start = perf_counter()
        answer = MonitorAnswer.from_result(self.nodes[node].query(query))
        TELEMETRY.observe("monitor.query_latency_s", perf_counter() - start)
        TELEMETRY.count(
            "monitor.queries_definite" if answer.definite else "monitor.queries_indefinite"
        )
        return answer

    def knows_edge(self, node: int, u: int, w: int) -> MonitorAnswer:
        """Does ``node`` currently know the edge ``{u, w}`` (robust-neighborhood query)?"""
        return self._query(node, EdgeQuery(u, w))

    def is_triangle(self, a: int, b: int, c: int, *, ask: Optional[int] = None) -> MonitorAnswer:
        """Is ``{a, b, c}`` a triangle?  Asked at ``ask`` (default: ``a``)."""
        node = a if ask is None else ask
        return self._query(node, TriangleQuery({a, b, c}))

    def is_clique(self, members: Iterable[int], *, ask: Optional[int] = None) -> MonitorAnswer:
        """Is ``members`` a clique?  Asked at ``ask`` (default: the smallest member)."""
        members = frozenset(members)
        node = min(members) if ask is None else ask
        return self._query(node, CliqueQuery(members))

    def is_cycle(self, ordering: Sequence[int], *, ask: Optional[int] = None) -> MonitorAnswer:
        """Is the cyclically ordered ``ordering`` a cycle?  Asked at ``ask`` (default: first)."""
        node = ordering[0] if ask is None else ask
        return self._query(node, CycleQuery(tuple(ordering)))

    def list_cycle(self, members: Iterable[int]) -> MonitorAnswer:
        """Collective 4/5-cycle listing query: ask *every* member.

        Mirrors the paper's listing guarantee: returns a definite TRUE if some
        consistent member recognises the node set as a cycle, a definite FALSE
        if all members are consistent and none does, and an indefinite answer
        if any member is still inconsistent (and none says TRUE).
        """
        members = frozenset(members)
        any_inconsistent = False
        for v in sorted(members):
            node = self.nodes[v]
            if not hasattr(node, "knows_cycle_set"):
                raise TypeError(
                    f"the {self.structure_name!r} structure does not answer "
                    "collective cycle-listing queries"
                )
            if not node.is_consistent():
                any_inconsistent = True
                continue
            if node.knows_cycle_set(members):
                return MonitorAnswer(value=True, definite=True)
        if any_inconsistent:
            return MonitorAnswer(value=None, definite=False)
        return MonitorAnswer(value=False, definite=True)

    # ------------------------------------------------------------------ #
    # Enumeration helpers (local state of one node)
    # ------------------------------------------------------------------ #
    def triangles_of(self, node: int) -> Set[FrozenSet[int]]:
        """All triangles through ``node`` according to its local state."""
        algo = self.nodes[node]
        if not hasattr(algo, "known_triangles"):
            raise TypeError(
                f"the {self.structure_name!r} structure does not enumerate triangles"
            )
        return algo.known_triangles()

    def cliques_of(self, node: int, k: int) -> Set[FrozenSet[int]]:
        """All k-cliques through ``node`` according to its local state."""
        algo = self.nodes[node]
        if not hasattr(algo, "known_cliques"):
            raise TypeError(
                f"the {self.structure_name!r} structure does not enumerate cliques"
            )
        return algo.known_cliques(k)

    def cycles_of(self, node: int, k: int) -> Set[FrozenSet[int]]:
        """All k-cycles (k in {4, 5}) visible from ``node``'s local state."""
        algo = self.nodes[node]
        if not hasattr(algo, "known_cycles"):
            raise TypeError(
                f"the {self.structure_name!r} structure does not enumerate cycles"
            )
        return algo.known_cycles(k)

    def is_node_consistent(self, node: int) -> bool:
        """Whether ``node`` could answer queries definitively right now."""
        return self.nodes[node].is_consistent()
