"""The serving subsystem: event-stream ingestion, standing subscriptions, SLO serving.

The old monolithic ``DynamicGraphMonitor`` grew into three layers:

* :mod:`repro.serve.ingest` -- **where batches come from**: the
  :class:`EventSource` abstraction with adversary-driven, trace-replay and
  external-JSONL-log sources (the latter normalized through
  :class:`LogConverter` into a replayable trace).
* :mod:`repro.serve.core` -- **the monitor itself**:
  :class:`ServingMonitor` runs one of the paper's structures on every node
  over any serial engine mode and answers typed local queries.
* :mod:`repro.serve.subscriptions` -- **who is asking**: standing queries
  registered by id, re-evaluated incrementally via the oracle's dirty-region
  versioning, firing :class:`AnswerChanged` notifications.

:class:`MonitorService` (:mod:`repro.serve.service`) wires the three together
and produces :class:`ServingReport` objects; ``repro.monitor`` remains as a
compatibility facade exposing the historical ``DynamicGraphMonitor`` name.
"""

from .core import STRUCTURES, MonitorAnswer, ServingMonitor
from .ingest import (
    EVENT_SOURCES,
    AdversaryEventSource,
    ConvertedLog,
    EventSource,
    LogConversionError,
    LogConverter,
    LogEventSource,
    TraceEventSource,
)
from .service import MonitorService, ServingReport
from .subscriptions import (
    DEFAULT_SETTLE_STREAK,
    SUBSCRIPTION_KINDS,
    AnswerChanged,
    Subscription,
    SubscriptionRegistry,
)

__all__ = [
    "AdversaryEventSource",
    "AnswerChanged",
    "ConvertedLog",
    "DEFAULT_SETTLE_STREAK",
    "EVENT_SOURCES",
    "EventSource",
    "LogConversionError",
    "LogConverter",
    "LogEventSource",
    "MonitorAnswer",
    "MonitorService",
    "ServingMonitor",
    "ServingReport",
    "STRUCTURES",
    "SUBSCRIPTION_KINDS",
    "Subscription",
    "SubscriptionRegistry",
    "TraceEventSource",
]
