"""Standing queries over the serving monitor, evaluated incrementally.

A *subscription* is a registered query -- robust-2-hop edge membership, a
triangle / clique alert, a collective cycle alert -- that the service
re-answers after every ingested batch and that fires a typed
:class:`AnswerChanged` notification whenever its answer moves.

Re-evaluating every subscription every round would defeat the paper's whole
point (answers are maintained *incrementally* under churn), so the registry
piggybacks on the oracle's dirty-region versioning
(:meth:`repro.oracle.GroundTruthOracle.last_changed_ball`): after a batch,
only subscriptions with a watched node inside the r-hop ball of that batch's
changes are marked dirty, and only dirty subscriptions are evaluated.  A
dirty subscription stays under evaluation until it has produced
``settle_streak`` consecutive *definite* answers -- covering both the
propagation window of the distributed structures and the robustness window
in which an untouched edge's robust-set membership can still change -- and
then goes quiet until the next touch.

Everything here is derived from engine-independent state (the ground-truth
graph via the oracle, node answers via the monitor), so the full
notification stream is bit-identical across the dense, sparse and columnar
engines; the serving CI gate asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..obs.telemetry import TELEMETRY
from .core import MonitorAnswer, ServingMonitor

__all__ = [
    "AnswerChanged",
    "Subscription",
    "SubscriptionRegistry",
    "SUBSCRIPTION_KINDS",
    "DEFAULT_SETTLE_STREAK",
]

#: The supported standing-query kinds.
SUBSCRIPTION_KINDS = ("edge", "triangle", "clique", "cycle")

#: How deep a topology change can reach each kind's answer.  Conservative
#: (within the oracle's tracked ``R_MAX``): edge subscriptions ask about the
#: robust 2/3-hop sets (edges within <= 2 hops of the asking node, 3 for
#: robust3hop), triangle/clique answers depend on the pattern sets built from
#: <= 2-hop information, and 4/5-cycle listing sees up to 3 hops.
_KIND_RADIUS = {"edge": 3, "triangle": 2, "clique": 2, "cycle": 3}

#: Consecutive definite answers after which a touched subscription stops
#: being re-evaluated.  Two rounds cover the robust-promotion window (an
#: edge untouched for 2 rounds enters the robust sets) and one more covers
#: the query-window boundary.
DEFAULT_SETTLE_STREAK = 3


@dataclass(frozen=True)
class AnswerChanged:
    """A standing query's answer moved.

    Attributes:
        subscription_id: the registered id.
        kind: the subscription kind (``edge``/``triangle``/``clique``/``cycle``).
        round_index: the served round after which the new answer was observed.
        old: the previous answer (``None`` for the registration-time answer).
        new: the current answer.
    """

    subscription_id: str
    kind: str
    round_index: int
    old: Optional[MonitorAnswer]
    new: MonitorAnswer

    def to_dict(self) -> dict:
        """JSON-ready, engine-comparable rendering (no wall-clock fields)."""
        return {
            "subscription_id": self.subscription_id,
            "kind": self.kind,
            "round_index": self.round_index,
            "old": None if self.old is None else [self.old.value, self.old.definite],
            "new": [self.new.value, self.new.definite],
        }


class Subscription:
    """One standing query: watched nodes, dirty-region radius, evaluator."""

    __slots__ = (
        "subscription_id",
        "kind",
        "params",
        "watched",
        "radius",
        "_evaluate",
        "answer",
        "dirty",
        "definite_streak",
        "evaluations",
    )

    def __init__(
        self,
        subscription_id: str,
        kind: str,
        params: dict,
        watched: FrozenSet[int],
        evaluate: Callable[[ServingMonitor], MonitorAnswer],
    ) -> None:
        self.subscription_id = subscription_id
        self.kind = kind
        self.params = params
        self.watched = watched
        self.radius = _KIND_RADIUS[kind]
        self._evaluate = evaluate
        self.answer: Optional[MonitorAnswer] = None
        self.dirty = True  # evaluated at the next opportunity
        self.definite_streak = 0
        self.evaluations = 0

    def evaluate(self, monitor: ServingMonitor) -> MonitorAnswer:
        self.evaluations += 1
        return self._evaluate(monitor)

    def to_dict(self) -> dict:
        return {"id": self.subscription_id, "kind": self.kind, **self.params}


def _build_evaluator(
    monitor: ServingMonitor, kind: str, params: dict
) -> Tuple[dict, FrozenSet[int], Callable[[ServingMonitor], MonitorAnswer]]:
    """Validate one subscription's parameters and bind its query closure.

    Returns the canonicalized params (what :meth:`Subscription.to_dict`
    reports), the watched node set and the evaluator.
    """
    n = monitor.n

    def check_node(x, label="node"):
        if not isinstance(x, int) or isinstance(x, bool) or not 0 <= x < n:
            raise ValueError(f"{label} must be an integer in [0, {n}), got {x!r}")
        return x

    if kind == "edge":
        node = check_node(params.pop("node"))
        u = check_node(params.pop("u"), "u")
        w = check_node(params.pop("w"), "w")
        if params:
            raise ValueError(f"unexpected edge-subscription params: {sorted(params)}")
        return (
            {"node": node, "u": u, "w": w},
            frozenset({node}),
            lambda m: m.knows_edge(node, u, w),
        )
    if kind in ("triangle", "clique", "cycle"):
        members = params.pop("members")
        members = tuple(check_node(x, "member") for x in members)
        member_set = frozenset(members)
        if kind == "triangle" and len(member_set) != 3:
            raise ValueError(f"a triangle subscription needs 3 distinct members, got {members}")
        if len(member_set) < 3:
            raise ValueError(f"a {kind} subscription needs >= 3 distinct members, got {members}")
        ask = params.pop("ask", None)
        if kind == "cycle":
            if ask is not None:
                raise ValueError("cycle subscriptions ask every member collectively")
            if params:
                raise ValueError(f"unexpected cycle-subscription params: {sorted(params)}")
            return (
                {"members": sorted(member_set)},
                member_set,
                lambda m: m.list_cycle(member_set),
            )
        ask = min(member_set) if ask is None else check_node(ask, "ask")
        if params:
            raise ValueError(f"unexpected {kind}-subscription params: {sorted(params)}")
        if kind == "triangle":
            a, b, c = sorted(member_set)
            return (
                {"members": [a, b, c], "ask": ask},
                frozenset({ask}),
                lambda m: m.is_triangle(a, b, c, ask=ask),
            )
        return (
            {"members": sorted(member_set), "ask": ask},
            frozenset({ask}),
            lambda m: m.is_clique(member_set, ask=ask),
        )
    raise ValueError(f"unknown subscription kind {kind!r}; choose from {SUBSCRIPTION_KINDS}")


class SubscriptionRegistry:
    """The standing queries of one serving monitor, keyed by id.

    Evaluation order is registration order, so the notification stream is
    deterministic.  The registry keeps plain always-on counters
    (:attr:`evaluated` / :attr:`skipped` / :attr:`fired`) for service
    reports; per-answer latency additionally lands in the
    ``serve.answer_latency_s`` telemetry histogram when telemetry is enabled.
    """

    def __init__(
        self, monitor: ServingMonitor, *, settle_streak: int = DEFAULT_SETTLE_STREAK
    ) -> None:
        if settle_streak < 1:
            raise ValueError("settle_streak must be >= 1")
        self.monitor = monitor
        self.settle_streak = settle_streak
        self._subscriptions: Dict[str, Subscription] = {}
        self._auto_id = 0
        self.evaluated = 0
        self.skipped = 0
        self.fired = 0

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, kind: str, *, subscription_id: Optional[str] = None, **params) -> str:
        """Register one standing query; returns its id.

        The query is probed once immediately: incompatible structure/kind
        pairs (e.g. a ``triangle`` alert on the ``robust2hop`` structure)
        are rejected here with a clear error instead of failing on the first
        served batch.  The registration-time answer seeds the change
        detection -- the first notification fires only when the answer
        *moves* from it.
        """
        if subscription_id is not None and subscription_id in self._subscriptions:
            raise ValueError(f"subscription id {subscription_id!r} already registered")
        canonical, watched, evaluate = _build_evaluator(self.monitor, kind, dict(params))
        subscription = Subscription("", kind, canonical, watched, evaluate)
        try:
            subscription.answer = subscription.evaluate(self.monitor)
        except TypeError as exc:
            raise ValueError(
                f"the {self.monitor.structure_name!r} structure cannot answer "
                f"{kind!r} subscriptions: {exc}"
            ) from exc
        if subscription_id is None:
            self._auto_id += 1
            subscription_id = f"sub-{self._auto_id:04d}"
        subscription.subscription_id = subscription_id
        self._subscriptions[subscription_id] = subscription
        return subscription_id

    def register_all(self, specs: Iterable[dict]) -> List[str]:
        """Register a batch of ``{"id": ..., "kind": ..., ...params}`` dicts."""
        ids = []
        for spec in specs:
            spec = dict(spec)
            kind = spec.pop("kind", None)
            if kind is None:
                raise ValueError(f"subscription spec needs a 'kind': {spec}")
            ids.append(self.register(kind, subscription_id=spec.pop("id", None), **spec))
        return ids

    def unregister(self, subscription_id: str) -> None:
        if subscription_id not in self._subscriptions:
            raise KeyError(subscription_id)
        del self._subscriptions[subscription_id]

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, subscription_id: str) -> bool:
        return subscription_id in self._subscriptions

    def get(self, subscription_id: str) -> Subscription:
        return self._subscriptions[subscription_id]

    def answers(self) -> Dict[str, Optional[MonitorAnswer]]:
        """The current answer of every subscription (id -> answer)."""
        return {sid: sub.answer for sid, sub in self._subscriptions.items()}

    # ------------------------------------------------------------------ #
    # Incremental evaluation
    # ------------------------------------------------------------------ #
    def evaluate_round(
        self, ball: Callable[[int], Set[int]], round_index: int
    ) -> List[AnswerChanged]:
        """Re-evaluate the subscriptions this round's changes could affect.

        Args:
            ball: ``ball(depth)`` -> nodes within ``depth`` hops of the
                round's topology changes (the oracle's dirty region; empty
                for a quiet round).
            round_index: the just-served round.

        Returns the notifications fired this round, in registration order.
        """
        notifications: List[AnswerChanged] = []
        telemetry_on = TELEMETRY.enabled
        tracer = TELEMETRY.tracer if telemetry_on else None
        evaluated_before = self.evaluated
        for subscription in self._subscriptions.values():
            touched = not subscription.watched.isdisjoint(ball(subscription.radius))
            if touched:
                subscription.dirty = True
                subscription.definite_streak = 0
            if not subscription.dirty:
                self.skipped += 1
                continue
            if telemetry_on:
                start = perf_counter()
                answer = subscription.evaluate(self.monitor)
                end = perf_counter()
                TELEMETRY.observe("serve.answer_latency_s", end - start)
                if tracer is not None:
                    tracer.add("serve.evaluate", start, end, round_index=round_index)
            else:
                answer = subscription.evaluate(self.monitor)
            self.evaluated += 1
            if answer != subscription.answer:
                notifications.append(
                    AnswerChanged(
                        subscription_id=subscription.subscription_id,
                        kind=subscription.kind,
                        round_index=round_index,
                        old=subscription.answer,
                        new=answer,
                    )
                )
                subscription.answer = answer
            if answer.definite:
                subscription.definite_streak += 1
                if subscription.definite_streak >= self.settle_streak:
                    subscription.dirty = False
            else:
                subscription.definite_streak = 0
        self.fired += len(notifications)
        if telemetry_on:
            # Only this round's evaluations: counting the running total here
            # would re-add every earlier round's work each round.
            TELEMETRY.count(
                "serve.subscriptions_evaluated", self.evaluated - evaluated_before
            )
            TELEMETRY.count("serve.notifications", len(notifications))
        return notifications
