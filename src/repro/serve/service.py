"""The serving loop: ingestion -> monitor -> oracle -> subscriptions.

:class:`MonitorService` wires the three serving layers together.  Per served
batch it:

1. hands the batch to the :class:`~repro.serve.core.ServingMonitor`
   (one communication round of the distributed structure),
2. lets its :class:`~repro.oracle.GroundTruthOracle` observe the updated
   network -- one incremental observation whose cost is proportional to the
   batch size, refreshing the dirty-region versioning,
3. asks the :class:`~repro.serve.subscriptions.SubscriptionRegistry` to
   re-evaluate exactly the standing queries whose r-hop ball was touched,
   collecting the fired :class:`~repro.serve.subscriptions.AnswerChanged`
   notifications.

:meth:`MonitorService.run` drains an :class:`~repro.serve.ingest.EventSource`
through that pipeline and returns a :class:`ServingReport` with throughput,
firing log and a state fingerprint -- the serving differential gate compares
these reports across engine modes byte for byte (minus wall-clock fields).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Set

from ..obs.telemetry import TELEMETRY
from ..oracle import GroundTruthOracle
from ..simulator import RoundChanges
from .core import ServingMonitor
from .ingest import EventSource
from .subscriptions import DEFAULT_SETTLE_STREAK, AnswerChanged, SubscriptionRegistry

__all__ = ["MonitorService", "ServingReport"]


@dataclass
class ServingReport:
    """What one :meth:`MonitorService.run` did.

    The engine-comparable part (everything except ``duration_s`` /
    ``queries_per_s``) is deterministic for a given update stream and
    subscription set, independent of engine mode -- that is the property the
    serving CI gate asserts.
    """

    structure: str
    engine_mode: str
    batches: int = 0
    events: int = 0
    subscriptions: int = 0
    evaluated: int = 0
    skipped: int = 0
    fired: int = 0
    firings: List[dict] = field(default_factory=list)
    state_fingerprint: str = ""
    duration_s: float = 0.0

    @property
    def queries_per_s(self) -> float:
        """Standing-query evaluations per second of serving time."""
        return self.evaluated / self.duration_s if self.duration_s > 0 else 0.0

    def comparable_dict(self) -> dict:
        """The deterministic, engine-independent part of the report."""
        return {
            "structure": self.structure,
            "batches": self.batches,
            "events": self.events,
            "subscriptions": self.subscriptions,
            "evaluated": self.evaluated,
            "skipped": self.skipped,
            "fired": self.fired,
            "firings": self.firings,
            "state_fingerprint": self.state_fingerprint,
        }

    def to_dict(self) -> dict:
        return {
            **self.comparable_dict(),
            "engine_mode": self.engine_mode,
            "duration_s": self.duration_s,
            "queries_per_s": self.queries_per_s,
        }


class MonitorService:
    """The full serving stack over one monitored graph.

    Args:
        n: number of nodes.
        structure: data structure name or factory (see
            :data:`~repro.serve.core.STRUCTURES`).
        engine_mode: any serial engine mode (``dense``/``sparse``/``columnar``).
        settle_streak: consecutive definite answers after which a touched
            subscription goes quiet (see
            :class:`~repro.serve.subscriptions.SubscriptionRegistry`).
        keyframe_interval: forwarded to the internal
            :class:`~repro.oracle.GroundTruthOracle`.
        monitor_kwargs: forwarded to :class:`~repro.serve.core.ServingMonitor`
            (``bandwidth_factor``, ``strict_bandwidth``).
    """

    def __init__(
        self,
        n: int,
        structure: str | type = "clique",
        *,
        engine_mode: str = "sparse",
        settle_streak: int = DEFAULT_SETTLE_STREAK,
        keyframe_interval: int = 64,
        **monitor_kwargs,
    ) -> None:
        self.monitor = ServingMonitor(
            n, structure, engine_mode=engine_mode, **monitor_kwargs
        )
        self.oracle = GroundTruthOracle.from_network(
            self.monitor.network, keyframe_interval=keyframe_interval
        )
        self.registry = SubscriptionRegistry(self.monitor, settle_streak=settle_streak)

    # Convenience passthroughs -- the service is the one object applications
    # hold, so the common registration/query surface is reachable directly.
    @property
    def n(self) -> int:
        return self.monitor.n

    def subscribe(self, kind: str, **params) -> str:
        """Register a standing query (see :meth:`SubscriptionRegistry.register`)."""
        return self.registry.register(kind, **params)

    def unsubscribe(self, subscription_id: str) -> None:
        self.registry.unregister(subscription_id)

    # ------------------------------------------------------------------ #
    # The serving pipeline
    # ------------------------------------------------------------------ #
    def ingest(self, changes: RoundChanges) -> List[AnswerChanged]:
        """Serve one batch; returns the notifications it fired.

        An empty batch is a quiet round: the structures get one more
        propagation round and still-dirty subscriptions are re-checked (their
        answers can change while changes propagate), but settled ones are
        skipped outright because the oracle's dirty ball is empty.
        """
        with TELEMETRY.span("serve.ingest"):
            self.monitor.ingest(changes)
            self.oracle.observe(self.monitor.network)
            ball_cache: Dict[int, Set[int]] = {}

            def ball(depth: int) -> Set[int]:
                found = ball_cache.get(depth)
                if found is None:
                    found = ball_cache[depth] = self.oracle.last_changed_ball(depth)
                return found

            notifications = self.registry.evaluate_round(ball, self.monitor.round_index)
        if TELEMETRY.enabled:
            TELEMETRY.count("serve.batches")
            TELEMETRY.count("serve.events_ingested", len(changes))
        return notifications

    def tick(self) -> List[AnswerChanged]:
        """Serve one quiet round."""
        return self.ingest(RoundChanges.empty())

    def run(
        self,
        source: EventSource,
        *,
        max_batches: Optional[int] = None,
        settle_rounds: int = 0,
        on_notification: Optional[Callable[[AnswerChanged], None]] = None,
    ) -> ServingReport:
        """Drain an event source through the serving pipeline.

        Args:
            source: where the batches come from.
            max_batches: stop after this many batches even if the source has
                more (required for open-ended sources).
            settle_rounds: extra quiet rounds served after the source is
                drained, letting in-flight changes reach their answers (and
                fire their notifications) before the report is cut.
            on_notification: called synchronously for every fired
                notification, in order.

        Returns the :class:`ServingReport` for this run.
        """
        report = ServingReport(
            structure=self.monitor.structure_name,
            engine_mode=self.monitor.engine_mode,
            subscriptions=len(self.registry),
        )
        if TELEMETRY.enabled:
            # Log-normalization tallies (coalesced duplicates, dropped no-ops,
            # clamped quiet gaps, ...) live on the source; surface them as
            # serve.ingest.* counters so --telemetry-out captures them.  Done
            # here, not at source construction: the CLI builds the source
            # before it enables telemetry.
            for name, value in (getattr(source, "stats", None) or {}).items():
                TELEMETRY.count(f"serve.ingest.{name}", int(value))
        start = perf_counter()
        while max_batches is None or report.batches < max_batches:
            changes = source.next_batch(self.monitor)
            if changes is None:
                break
            self._serve(changes, report, on_notification)
        for _ in range(settle_rounds):
            self._serve(RoundChanges.empty(), report, on_notification)
        report.duration_s = perf_counter() - start
        report.state_fingerprint = self.monitor.state_fingerprint()
        return report

    def _serve(
        self,
        changes: RoundChanges,
        report: ServingReport,
        on_notification: Optional[Callable[[AnswerChanged], None]],
    ) -> None:
        evaluated_before = self.registry.evaluated
        skipped_before = self.registry.skipped
        notifications = self.ingest(changes)
        report.batches += 1
        report.events += len(changes)
        report.evaluated += self.registry.evaluated - evaluated_before
        report.skipped += self.registry.skipped - skipped_before
        report.fired += len(notifications)
        report.firings.extend(note.to_dict() for note in notifications)
        if on_notification is not None:
            for note in notifications:
                on_notification(note)
