"""Event-stream ingestion: where the serving monitor's batches come from.

The serving subsystem separates *what drives the graph* from *what maintains
and answers it*.  This module owns the driving side:

* :class:`EventSource` -- the abstraction: one canonical
  :class:`~repro.simulator.events.RoundChanges` batch per round, pulled by
  the service loop.
* :class:`AdversaryEventSource` -- wraps any registered
  :class:`~repro.simulator.adversary.Adversary` (flicker, heavy-tailed p2p
  churn, fuzz schedules, ...), feeding it a live
  :class:`~repro.simulator.adversary.AdversaryView` of the served graph so
  stability-waiting schedules work unchanged.
* :class:`TraceEventSource` -- replays a recorded
  :class:`~repro.simulator.trace.TopologyTrace`.
* :class:`LogEventSource` / :class:`LogConverter` -- the normalized-ingest
  path for **external** feeds: timestamped link up/down records (JSONL) are
  bucketed into rounds, coalesced (last event per edge per round wins),
  de-no-op'd against the tracked link state, validated against ``range(n)``
  and frozen into a replayable :class:`TopologyTrace` -- so recorded
  real-world churn becomes a first-class workload for the campaign, fuzz and
  differential machinery, not just for serving.

Log record format (one JSON object per line)::

    {"ts": 12.25, "u": 3, "v": 7, "op": "up"}
    {"ts": 12.75, "u": 3, "v": 7, "op": "down"}

``op`` accepts ``up``/``down`` (aliases: ``insert``/``delete``).  Rounds are
``floor((ts - first_ts) / round_duration)``; a record may instead carry an
explicit integer ``round`` field, which takes precedence.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from ..simulator.adversary import Adversary, AdversaryView
from ..simulator.events import (
    Edge,
    EdgeDelete,
    EdgeInsert,
    RoundChanges,
    TopologyEvent,
    canonical_edge,
)
from ..simulator.trace import TopologyTrace

__all__ = [
    "EventSource",
    "AdversaryEventSource",
    "TraceEventSource",
    "LogEventSource",
    "LogConverter",
    "ConvertedLog",
    "LogConversionError",
    "EVENT_SOURCES",
]


class EventSource(ABC):
    """A pull-based stream of per-round topology batches.

    The service loop calls :meth:`next_batch` once per round, handing the
    source the monitor it is driving (so adversaries can observe the served
    graph exactly as they observe a simulation).  ``None`` means the source
    is exhausted and the service stops ingesting.
    """

    @abstractmethod
    def next_batch(self, monitor) -> Optional[RoundChanges]:
        """The batch for the upcoming round, or ``None`` when exhausted."""

    @property
    def is_done(self) -> bool:
        """Whether the source has no further batches to offer."""
        return False


class AdversaryEventSource(EventSource):
    """Drive the monitor from any :class:`~repro.simulator.adversary.Adversary`.

    Args:
        adversary: the schedule generator.
        rounds: optional hard cap on the number of batches produced;
            required for open-ended adversaries (ones whose ``is_done``
            never fires), mirroring
            :func:`~repro.simulator.runner.drive_engine`.
    """

    def __init__(self, adversary: Adversary, *, rounds: Optional[int] = None) -> None:
        self.adversary = adversary
        self.rounds = rounds
        self._produced = 0
        self._exhausted = False

    def next_batch(self, monitor) -> Optional[RoundChanges]:
        if self.is_done:
            return None
        view = AdversaryView.from_network(
            monitor.network,
            round_index=monitor.network.round_index + 1,
            all_consistent=monitor.all_consistent,
        )
        changes = self.adversary.changes_for_round(view)
        if changes is None:
            self._exhausted = True
            return None
        self._produced += 1
        return changes

    @property
    def is_done(self) -> bool:
        if self._exhausted or self.adversary.is_done:
            return True
        return self.rounds is not None and self._produced >= self.rounds


class TraceEventSource(EventSource):
    """Replay a recorded :class:`TopologyTrace` batch by batch.

    The trace is validated against its declared node range up front, like
    :class:`~repro.simulator.trace.TraceReplayAdversary`.
    """

    def __init__(self, trace: TopologyTrace) -> None:
        self.trace = trace.validate_nodes()
        self._cursor = 0

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceEventSource":
        return cls(TopologyTrace.load(path))

    def next_batch(self, monitor) -> Optional[RoundChanges]:
        if self._cursor >= self.trace.num_rounds:
            return None
        changes = self.trace.changes_for(self._cursor)
        self._cursor += 1
        return changes

    @property
    def is_done(self) -> bool:
        return self._cursor >= self.trace.num_rounds


# --------------------------------------------------------------------- #
# External log ingestion
# --------------------------------------------------------------------- #
class LogConversionError(ValueError):
    """A log record could not be normalized (bad shape, bad ids, bad op)."""


#: Accepted spellings of the two link transitions.
_OPS = {
    "up": True,
    "insert": True,
    "down": False,
    "delete": False,
}


@dataclass
class ConvertedLog:
    """Result of one :class:`LogConverter` run.

    Attributes:
        trace: the replayable normalized schedule (round 0 is the first
            bucket of the feed).
        stats: conversion accounting -- ``records_read``, ``events_emitted``,
            ``coalesced_dropped`` (superseded by a later event for the same
            edge in the same round), ``noop_dropped`` (transitions matching
            the already-tracked link state), ``rounds``, ``quiet_rounds``.
    """

    trace: TopologyTrace
    stats: Dict[str, int] = field(default_factory=dict)


class LogConverter:
    """Normalize timestamped link up/down records into canonical round batches.

    The converter is the boundary between messy external feeds and the
    simulator's strict event vocabulary:

    * **bucketing** -- timestamps map to round indices via ``round_duration``
      (records may carry an explicit ``round`` instead); gaps between buckets
      become quiet rounds, preserving the feed's real-time pacing in round
      units (``max_quiet_gap`` clamps pathological gaps).
    * **coalescing** -- within one round, the *last* event per edge wins
      (:meth:`RoundChanges.coalesce`), because all changes of a round are
      simultaneous in the model and a batch may touch each edge at most once.
    * **de-no-op'ing** -- the converter tracks link state across rounds and
      drops transitions to the state a link is already in (duplicate "up"
      reports, deletes of unknown links), which real feeds are full of.
    * **validation** -- node ids must be integers in ``range(n)``, ``u != v``;
      the first offending record is named with its line number.

    Args:
        n: node-id universe of the served graph.
        round_duration: seconds of feed time per simulated round (ignored for
            records carrying an explicit ``round``).
        origin_ts: timestamp mapping to round 0; defaults to the first
            record's timestamp.
        max_quiet_gap: if set, consecutive quiet rounds between buckets are
            clamped to this many.
    """

    def __init__(
        self,
        n: int,
        *,
        round_duration: float = 1.0,
        origin_ts: Optional[float] = None,
        max_quiet_gap: Optional[int] = None,
    ) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if round_duration <= 0:
            raise ValueError("round_duration must be positive")
        if max_quiet_gap is not None and max_quiet_gap < 0:
            raise ValueError("max_quiet_gap must be non-negative")
        self.n = n
        self.round_duration = float(round_duration)
        self.origin_ts = origin_ts
        self.max_quiet_gap = max_quiet_gap

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def convert_file(self, path: Union[str, Path]) -> ConvertedLog:
        """Convert a JSONL log file."""
        return self.convert_lines(Path(path).read_text().splitlines())

    def convert_lines(self, lines: Iterable[str]) -> ConvertedLog:
        """Convert an iterable of JSONL lines (blank lines are skipped)."""
        records = []
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise LogConversionError(f"line {lineno}: invalid JSON ({exc})") from exc
            if not isinstance(record, dict):
                raise LogConversionError(f"line {lineno}: expected a JSON object")
            records.append((lineno, record))
        return self.convert_records(records)

    def convert_records(
        self, records: Iterable[Union[dict, Tuple[int, dict]]]
    ) -> ConvertedLog:
        """Convert already-parsed records (optionally ``(lineno, record)`` pairs)."""
        parsed: List[Tuple[int, int, TopologyEvent]] = []  # (round, seq, event)
        origin = self.origin_ts
        records_read = 0
        for seq, item in enumerate(records):
            lineno, record = item if isinstance(item, tuple) else (seq + 1, item)
            records_read += 1
            is_up = self._parse_op(lineno, record)
            edge = self._parse_edge(lineno, record)
            if "round" in record:
                round_index = self._parse_round(lineno, record["round"])
            else:
                ts = self._parse_ts(lineno, record)
                if origin is None:
                    origin = ts
                if ts < origin:
                    raise LogConversionError(
                        f"line {lineno}: timestamp {ts} precedes the origin {origin} "
                        "(records must be ordered, or pass origin_ts explicitly)"
                    )
                round_index = int((ts - origin) / self.round_duration)
            event = EdgeInsert(*edge) if is_up else EdgeDelete(*edge)
            parsed.append((round_index, seq, event))

        # Stable bucket order: by round, then input order within the round.
        parsed.sort(key=lambda item: (item[0], item[1]))

        batches: List[RoundChanges] = []
        stats = {
            "records_read": records_read,
            "events_emitted": 0,
            "coalesced_dropped": 0,
            "noop_dropped": 0,
            "quiet_rounds": 0,
            "clamped_gap_rounds": 0,
        }
        present: Set[Edge] = set()
        cursor = 0
        index = 0
        while index < len(parsed):
            round_index = parsed[index][0]
            bucket: List[TopologyEvent] = []
            while index < len(parsed) and parsed[index][0] == round_index:
                bucket.append(parsed[index][2])
                index += 1
            gap = round_index - cursor
            if self.max_quiet_gap is not None and gap > self.max_quiet_gap:
                stats["clamped_gap_rounds"] += gap - self.max_quiet_gap
                gap = self.max_quiet_gap
            for _ in range(gap):
                batches.append(RoundChanges.empty())
                stats["quiet_rounds"] += 1
            coalesced = RoundChanges.coalesce(bucket)
            stats["coalesced_dropped"] += len(bucket) - len(coalesced)
            events: List[TopologyEvent] = []
            for ev in coalesced:
                if ev.is_insert == (ev.edge in present):
                    stats["noop_dropped"] += 1
                    continue
                if ev.is_insert:
                    present.add(ev.edge)
                else:
                    present.discard(ev.edge)
                events.append(ev)
            stats["events_emitted"] += len(events)
            batches.append(RoundChanges(events))
            cursor = round_index + 1
        stats["rounds"] = len(batches)
        return ConvertedLog(
            trace=TopologyTrace.from_batches(self.n, batches), stats=stats
        )

    # ------------------------------------------------------------------ #
    # Record parsing
    # ------------------------------------------------------------------ #
    def _parse_op(self, lineno: int, record: dict) -> bool:
        op = record.get("op")
        if not isinstance(op, str) or op.lower() not in _OPS:
            raise LogConversionError(
                f"line {lineno}: 'op' must be one of {sorted(_OPS)}, got {op!r}"
            )
        return _OPS[op.lower()]

    def _parse_edge(self, lineno: int, record: dict) -> Edge:
        try:
            u, v = record["u"], record["v"]
        except KeyError as exc:
            raise LogConversionError(f"line {lineno}: missing endpoint field {exc}") from exc
        if not isinstance(u, int) or not isinstance(v, int) or isinstance(u, bool) or isinstance(v, bool):
            raise LogConversionError(
                f"line {lineno}: endpoints must be integers, got u={u!r} v={v!r}"
            )
        try:
            edge = canonical_edge(u, v)
        except ValueError as exc:
            raise LogConversionError(f"line {lineno}: {exc}") from exc
        if edge[1] >= self.n:
            raise LogConversionError(
                f"line {lineno}: node {edge[1]} out of range for n={self.n}"
            )
        return edge

    def _parse_ts(self, lineno: int, record: dict) -> float:
        ts = record.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            raise LogConversionError(
                f"line {lineno}: 'ts' must be a number (or provide an integer 'round'), "
                f"got {ts!r}"
            )
        return float(ts)

    def _parse_round(self, lineno: int, value) -> int:
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise LogConversionError(
                f"line {lineno}: 'round' must be a non-negative integer, got {value!r}"
            )
        return value


class LogEventSource(TraceEventSource):
    """Ingest an external JSONL link-event log.

    The log is normalized eagerly through :class:`LogConverter` at
    construction, so malformed feeds fail before the first round and the
    resulting :attr:`trace` is available for replay, recording next to
    results, or splicing into campaigns.
    """

    def __init__(
        self,
        log: Union[str, Path, Iterable[str]],
        *,
        n: int,
        round_duration: float = 1.0,
        origin_ts: Optional[float] = None,
        max_quiet_gap: Optional[int] = None,
    ) -> None:
        converter = LogConverter(
            n,
            round_duration=round_duration,
            origin_ts=origin_ts,
            max_quiet_gap=max_quiet_gap,
        )
        if isinstance(log, (str, Path)):
            converted = converter.convert_file(log)
        else:
            converted = converter.convert_lines(log)
        self.stats = converted.stats
        super().__init__(converted.trace)


#: Source kinds selectable from the CLI (`serve --source ...`).
EVENT_SOURCES = ("adversary", "trace", "log")
