"""Failure signatures and schedule fingerprints for the fuzzing subsystem.

A fuzz run, a shrink candidate and a corpus replay all need the same two
primitives:

* :func:`evaluate_spec` -- run one cell through the differential harness
  (:func:`repro.verification.run_differential` with every applicable check)
  and distill the outcome into a :class:`FailureSignature`;
* :func:`trace_fingerprint` -- a stable content digest of ``(algorithm, n,
  schedule)``, used to cache shrink verdicts and deduplicate corpus entries.

A :class:`FailureSignature` abstracts a failure to its *class*: the set of
``(kind, field)`` divergence pairs, ``(check, field)`` check-failure pairs
and exception type names.  Two reports of the same underlying bug on
different schedules typically share a class even though their round/node
details differ, which is exactly the equivalence the ddmin shrinker needs
("does this smaller schedule still reproduce the failure I started from?").
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..experiments.spec import ExperimentSpec

__all__ = ["FailureSignature", "evaluate_spec", "trace_fingerprint"]


@dataclass(frozen=True)
class FailureSignature:
    """The failure class of one differential run (empty when the run is ok).

    Attributes:
        divergences: sorted unique ``(kind, field)`` pairs of the report's
            :class:`~repro.verification.differential.Divergence` records.
        checks: sorted unique ``(check, field)`` pairs of the structured
            :class:`~repro.verification.checks.CheckFailure` records.
        errors: exception type names when the run itself raised.
    """

    divergences: Tuple[Tuple[str, str], ...] = ()
    checks: Tuple[Tuple[str, str], ...] = ()
    errors: Tuple[str, ...] = ()

    @classmethod
    def of(cls, report: Any) -> "FailureSignature":
        """Distill a :class:`DifferentialReport` into its failure class."""
        return cls(
            divergences=tuple(
                sorted({(d.kind, d.field) for d in report.divergences})
            ),
            checks=tuple(
                sorted({(f.check, f.field) for f in report.check_failures})
            ),
        )

    @classmethod
    def of_error(cls, exc: BaseException) -> "FailureSignature":
        return cls(errors=(type(exc).__name__,))

    @property
    def is_failure(self) -> bool:
        return bool(self.divergences or self.checks or self.errors)

    def matches(self, other: "FailureSignature") -> bool:
        """Whether the two signatures share at least one failure class.

        Intersection (not equality) semantics: shrinking a schedule often
        sheds *secondary* symptoms (e.g. a summary-metric divergence implied
        by a final-state divergence) while preserving the root one, and a
        candidate that keeps any of the original classes alive is still a
        reproducer of the bug under investigation.
        """
        return bool(
            set(self.divergences) & set(other.divergences)
            or set(self.checks) & set(other.checks)
            or set(self.errors) & set(other.errors)
        )

    def residual(self, knowns: Sequence["FailureSignature"]) -> "FailureSignature":
        """The part of this signature not covered by any known signature.

        Empty when every component (divergence pair, check pair, error type)
        already appears in some known class; otherwise exactly the *new*
        failure classes -- which is what a shrinker should preserve when a
        fresh bug first surfaces tangled together with an already-banked one.
        """
        known_div = {pair for k in knowns for pair in k.divergences}
        known_checks = {pair for k in knowns for pair in k.checks}
        known_errors = {name for k in knowns for name in k.errors}
        return FailureSignature(
            divergences=tuple(sorted(set(self.divergences) - known_div)),
            checks=tuple(sorted(set(self.checks) - known_checks)),
            errors=tuple(sorted(set(self.errors) - known_errors)),
        )

    def describe(self) -> str:
        if not self.is_failure:
            return "ok"
        parts = []
        parts.extend(f"divergence {kind}:{fld}" for kind, fld in self.divergences)
        parts.extend(f"check {check}:{fld}" for check, fld in self.checks)
        parts.extend(f"error {name}" for name in self.errors)
        return "; ".join(parts)

    # ------------------------------------------------------------------ #
    # Serialisation (corpus entries)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "divergences": [list(pair) for pair in self.divergences],
            "checks": [list(pair) for pair in self.checks],
            "errors": list(self.errors),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureSignature":
        return cls(
            divergences=tuple(
                sorted(tuple(str(x) for x in pair) for pair in data.get("divergences", ()))
            ),
            checks=tuple(
                sorted(tuple(str(x) for x in pair) for pair in data.get("checks", ()))
            ),
            errors=tuple(sorted(str(x) for x in data.get("errors", ()))),
        )


def evaluate_spec(
    spec: ExperimentSpec, modes: Sequence[str]
) -> Tuple[FailureSignature, Optional[Any]]:
    """Run ``spec`` differentially and return ``(signature, report)``.

    Every applicable registered check runs on the reference leg.  A run that
    raises (livelocked drain, bandwidth violation, message to a non-neighbor,
    ...) is itself a failure mode worth shrinking, so exceptions become
    ``errors`` signatures with ``report=None`` rather than propagating.
    """
    from ..verification.differential import run_differential

    try:
        report = run_differential(spec, modes=tuple(modes), auto_checks=True)
    except Exception as exc:  # noqa: BLE001 - the exception *is* the verdict
        return FailureSignature.of_error(exc), None
    return FailureSignature.of(report), report


def trace_fingerprint(algorithm: str, n: int, rounds: Sequence, *, drain: bool = True) -> str:
    """Content digest of one scripted schedule under one algorithm.

    Stable across processes and Python hash seeds (plain JSON of canonical
    data); used as the shrinker's verdict-cache key and the corpus entry id.
    """
    payload = {
        "algorithm": algorithm,
        "n": int(n),
        "drain": bool(drain),
        "rounds": [
            [sorted([int(a), int(b)] for a, b in ins), sorted([int(a), int(b)] for a, b in dels)]
            for ins, dels in rounds
        ],
    }
    return hashlib.sha1(json.dumps(payload, sort_keys=True).encode()).hexdigest()
