"""The reproducer corpus: minimized failing schedules as permanent regressions.

A :class:`CorpusStore` owns one directory (``ResultStore``-style JSONL)::

    <root>/
      corpus.jsonl   # one CorpusEntry per line, appended as failures land

Every entry is a self-contained scripted reproducer -- algorithm, ``n``, the
(minimized) schedule, the engine modes it was observed under and the recorded
:class:`~repro.fuzz.signature.FailureSignature` -- plus an ``expect`` verdict:

* ``expect == "fail"``: the bug is open; replay is OK while the failure
  class still reproduces, and *flags the entry as stale the moment the
  failure stops reproducing* (the bug got fixed -- flip the entry to
  ``"pass"`` and keep it forever as a regression guard).
* ``expect == "pass"``: the bug is fixed; replay is OK while the cell runs
  clean under every recorded mode.

The committed corpus under ``tests/data/fuzz_corpus/`` is replayed by the
tier-1 suite, so every bug the fuzzer ever minimized keeps being retested on
all engines forever.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..experiments.spec import ExperimentSpec
from .signature import FailureSignature, evaluate_spec, trace_fingerprint

__all__ = ["CorpusEntry", "CorpusStore", "ReplayOutcome"]

_EXPECTS = ("fail", "pass")


@dataclass
class CorpusEntry:
    """One stored reproducer.

    ``faults``/``fault_params``/``seed`` make fault-triggered reproducers
    self-contained: the scripted schedule is the *logical* topology and the
    fault plan (a pure function of the seed) rebuilds the physical faults on
    replay.  All three default to the fault-free values, so entries recorded
    before fault support round-trip bit-identically with unchanged ids.
    """

    algorithm: str
    n: int
    trace: Dict[str, Any]  # TopologyTrace.to_dict() form
    signature: FailureSignature
    expect: str = "fail"
    modes: Sequence[str] = ("dense", "sparse")
    drain: bool = True
    note: str = ""
    provenance: Dict[str, Any] = field(default_factory=dict)
    added_at: float = 0.0
    faults: str = "none"
    fault_params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.expect not in _EXPECTS:
            raise ValueError(f"expect must be one of {_EXPECTS}, got {self.expect!r}")
        self.modes = tuple(self.modes)

    @property
    def entry_id(self) -> str:
        rounds = [(r["insert"], r["delete"]) for r in self.trace["rounds"]]
        # The fault tag joins the digest only when set: fault-free ids are
        # byte-identical to those of entries recorded before fault support.
        algorithm = self.algorithm
        if self.faults != "none":
            tag = json.dumps(
                {"faults": self.faults, "params": self.fault_params, "seed": self.seed},
                sort_keys=True,
            )
            algorithm = f"{self.algorithm}@{tag}"
        return trace_fingerprint(algorithm, self.n, rounds, drain=self.drain)[:16]

    @property
    def num_rounds(self) -> int:
        return len(self.trace["rounds"])

    def spec(self) -> ExperimentSpec:
        """The self-contained scripted cell this entry replays as."""
        return ExperimentSpec(
            algorithm=self.algorithm,
            adversary="scripted",
            n=self.n,
            rounds=None,
            seed=self.seed,
            adversary_params={"trace": json.loads(json.dumps(self.trace))},
            drain=self.drain,
            faults=self.faults,
            fault_params=dict(self.fault_params),
        )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "entry_id": self.entry_id,
            "algorithm": self.algorithm,
            "n": self.n,
            "trace": self.trace,
            "signature": self.signature.to_dict(),
            "expect": self.expect,
            "modes": list(self.modes),
            "drain": self.drain,
            "note": self.note,
            "provenance": dict(self.provenance),
            "added_at": self.added_at,
        }
        if self.faults != "none":
            data["faults"] = self.faults
            data["fault_params"] = dict(self.fault_params)
            data["seed"] = self.seed
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CorpusEntry":
        return cls(
            algorithm=str(data["algorithm"]),
            n=int(data["n"]),
            trace=dict(data["trace"]),
            signature=FailureSignature.from_dict(data.get("signature", {})),
            expect=str(data.get("expect", "fail")),
            modes=tuple(data.get("modes", ("dense", "sparse"))),
            drain=bool(data.get("drain", True)),
            note=str(data.get("note", "")),
            provenance=dict(data.get("provenance", {})),
            added_at=float(data.get("added_at", 0.0)),
            faults=str(data.get("faults", "none")),
            fault_params=dict(data.get("fault_params", {})),
            seed=int(data.get("seed", 0)),
        )


@dataclass
class ReplayOutcome:
    """The verdict of replaying one corpus entry."""

    entry: CorpusEntry
    observed: FailureSignature
    ok: bool
    detail: str

    def describe(self) -> str:
        verdict = "ok" if self.ok else "STALE/FAIL"
        return f"[{self.entry.entry_id}] {self.entry.algorithm} n={self.entry.n} ({self.entry.num_rounds} rounds): {verdict} -- {self.detail}"


class CorpusStore:
    """JSONL-backed store of minimized reproducers."""

    CORPUS_FILE = "corpus.jsonl"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.corpus_path = self.root / self.CORPUS_FILE
        # Stored entry ids, loaded lazily once and maintained incrementally by
        # :meth:`add` so a long fuzz session does not re-parse the whole file
        # per bank.  (Per-instance: concurrent external writers are not part
        # of the corpus contract.)
        self._known_ids: Optional[set[str]] = None

    # ------------------------------------------------------------------ #
    # Reading / writing
    # ------------------------------------------------------------------ #
    def entries(self) -> List[CorpusEntry]:
        """All stored entries, oldest first (later duplicates are dropped).

        Undecodable lines are skipped (appends are flushed line-by-line, so
        broken JSON can only be a torn append that was never acknowledged).
        A line that *parses* but does not form a valid entry is different: it
        is a hand-edit gone wrong, and silently dropping it would remove a
        regression guard from the replay gate -- so it raises instead.
        """
        if not self.corpus_path.exists():
            return []
        out: List[CorpusEntry] = []
        seen: set[str] = set()
        for lineno, line in enumerate(self.corpus_path.read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn append; the entry was never acknowledged
            try:
                entry = CorpusEntry.from_dict(data)
            except (KeyError, ValueError, TypeError) as exc:
                raise ValueError(
                    f"{self.corpus_path}:{lineno}: invalid corpus entry ({exc}); "
                    "fix the hand-edited line instead of letting the reproducer "
                    "silently drop out of the replay gate"
                ) from exc
            if entry.entry_id not in seen:
                seen.add(entry.entry_id)
                out.append(entry)
        return out

    def add(self, entry: CorpusEntry) -> bool:
        """Append ``entry`` unless its schedule is already stored.

        Returns whether the entry was new.  The line is flushed immediately,
        matching :class:`~repro.experiments.store.ResultStore` durability.
        """
        if self._known_ids is None:
            self._known_ids = {existing.entry_id for existing in self.entries()}
        if entry.entry_id in self._known_ids:
            return False
        if not entry.added_at:
            entry.added_at = time.time()
        self.root.mkdir(parents=True, exist_ok=True)
        with self.corpus_path.open("a") as handle:
            handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
            handle.flush()
        self._known_ids.add(entry.entry_id)
        return True

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def replay(
        self, entry: CorpusEntry, *, modes: Optional[Sequence[str]] = None
    ) -> ReplayOutcome:
        """Re-run one reproducer and grade it against its ``expect`` verdict."""
        observed, _ = evaluate_spec(entry.spec(), tuple(modes or entry.modes))
        if entry.expect == "pass":
            ok = not observed.is_failure
            detail = (
                "replays clean (fixed bug stays fixed)"
                if ok
                else f"regression: {observed.describe()}"
            )
        else:
            ok = observed.matches(entry.signature)
            if ok:
                detail = f"still reproduces: {observed.describe()}"
            elif observed.is_failure:
                detail = (
                    f"failure class changed: recorded {entry.signature.describe()}, "
                    f"observed {observed.describe()}"
                )
            else:
                detail = (
                    "stopped failing-as-expected (bug fixed?); flip the entry's "
                    "expect to 'pass' to keep it as a permanent regression"
                )
        return ReplayOutcome(entry=entry, observed=observed, ok=ok, detail=detail)

    def replay_all(
        self,
        *,
        modes: Optional[Sequence[str]] = None,
        progress: Optional[Callable[[ReplayOutcome, int, int], None]] = None,
    ) -> List[ReplayOutcome]:
        """Replay every stored entry; see :meth:`replay` for grading."""
        entries = self.entries()
        outcomes: List[ReplayOutcome] = []
        for i, entry in enumerate(entries):
            outcome = self.replay(entry, modes=modes)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome, i + 1, len(entries))
        return outcomes
