"""The fuzzing loop: generate, differentially verify, shrink, bank.

:func:`run_fuzz` turns a budget of seeded schedules into verdicts: every
schedule runs through :func:`repro.verification.run_differential` across the
configured engine modes with every applicable registered check; failures are
distilled to :class:`~repro.fuzz.signature.FailureSignature` classes, the
first schedule of each new class is ddmin-shrunk to a minimal scripted trace,
and the minimized reproducer is banked in a
:class:`~repro.fuzz.corpus.CorpusStore` so the bug stays retested forever.

Every fuzz cell is an ordinary :class:`~repro.experiments.spec.ExperimentSpec`
over the registered ``fuzz`` adversary, so the same workload also runs inside
:class:`~repro.experiments.campaign.CampaignRunner` sweeps (a ``fuzz`` grid
axis) -- the driver only adds the shrink-and-bank loop on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..experiments.spec import ExperimentSpec
from ..obs.telemetry import TELEMETRY
from .corpus import CorpusEntry, CorpusStore
from .generators import PROFILES
from .shrink import ShrinkResult, Shrinker
from .signature import FailureSignature, evaluate_spec

__all__ = ["FuzzConfig", "FuzzFailure", "FuzzReport", "run_fuzz"]

#: Per-cell progress callback: ``progress(cell_record, done, total)``.
ProgressCallback = Callable[[Dict[str, Any], int, int], None]

#: Seed stride between fuzz cells (a large prime, so sweeping base seeds
#: 0, 1, 2, ... never replays another sweep's schedule stream).
_SEED_STRIDE = 1_000_003


@dataclass
class FuzzConfig:
    """What to fuzz and how hard.

    Attributes:
        budget: number of schedules to generate and verify.
        seed: base seed; cell ``i`` uses ``seed * 1_000_003 + i``.
        algorithms: round-robin pool of algorithms under test.
        n: network size of every fuzz cell.
        schedule_rounds: rounds per generated schedule.
        profile: phase mix (see :data:`repro.fuzz.generators.PROFILES`).
        modes: engine modes compared per cell.
        shrink: ddmin-minimize the first failure of each new failure class.
        max_shrink_candidates: harness-run budget per shrink session.
        max_events_per_round: churn-burst intensity knob.
        faults: fault-model axis, cycled across cells (``"none"`` entries
            fuzz fault-free).  Every fault plan is a pure function of the
            cell seed, so faulted cells differentially verify and shrink
            like any other.
    """

    budget: int = 50
    seed: int = 0
    algorithms: Tuple[str, ...] = ("triangle", "robust2hop", "robust3hop", "twohop")
    n: int = 8
    schedule_rounds: int = 30
    profile: str = "mixed"
    modes: Tuple[str, ...] = ("dense", "sparse")
    shrink: bool = False
    max_shrink_candidates: int = 1500
    max_events_per_round: int = 3
    faults: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("budget must be non-negative")
        if not self.algorithms:
            raise ValueError("need at least one algorithm to fuzz")
        if self.n < 3:
            raise ValueError(f"the schedule fuzzer needs n >= 3, got {self.n}")
        if self.schedule_rounds < 1:
            raise ValueError("schedule_rounds must be positive")
        if self.max_events_per_round < 1:
            raise ValueError("max_events_per_round must be positive")
        if self.profile not in PROFILES:
            raise ValueError(f"unknown profile {self.profile!r}; choose from {sorted(PROFILES)}")
        if len(self.modes) < 2:
            raise ValueError("fuzzing compares engines; need at least two modes")
        self.faults = tuple(self.faults)
        from ..faults.models import FAULTS

        for name in self.faults:
            if name != "none" and name not in FAULTS:
                raise ValueError(
                    f"unknown fault model {name!r}; choose from "
                    f"{['none'] + sorted(FAULTS)}"
                )

    def cell_spec(self, index: int) -> ExperimentSpec:
        """The ``index``-th fuzz cell of this configuration."""
        faults = self.faults[index % len(self.faults)] if self.faults else "none"
        return ExperimentSpec(
            algorithm=self.algorithms[index % len(self.algorithms)],
            adversary="fuzz",
            n=self.n,
            rounds=self.schedule_rounds,
            seed=self.seed * _SEED_STRIDE + index,
            adversary_params={
                "profile": self.profile,
                "max_events_per_round": self.max_events_per_round,
            },
            faults=faults,
        )


@dataclass
class FuzzFailure:
    """One failing fuzz cell, with its scripted reproducer."""

    spec: ExperimentSpec  # the fuzz cell that failed
    scripted: ExperimentSpec  # the same schedule as a self-contained scripted cell
    signature: FailureSignature
    shrink: Optional[ShrinkResult] = None
    corpus_id: Optional[str] = None

    @property
    def reproducer(self) -> ExperimentSpec:
        """The smallest known reproducer (minimized when shrinking ran)."""
        return self.shrink.minimized if self.shrink is not None else self.scripted

    def describe(self) -> str:
        lines = [f"cell {self.spec.cell_id}: {self.signature.describe()}"]
        if self.shrink is not None:
            lines.append(f"  {self.shrink.describe()}")
        if self.corpus_id is not None:
            lines.append(f"  banked as corpus entry {self.corpus_id}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """The outcome of one fuzzing session."""

    config: FuzzConfig
    cells: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_failing(self) -> int:
        return len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failure_classes(self) -> List[Tuple[str, FailureSignature]]:
        """Distinct ``(algorithm, signature)`` classes among the failures."""
        classes: List[Tuple[str, FailureSignature]] = []
        for failure in self.failures:
            if not any(
                failure.spec.algorithm == algorithm and failure.signature.matches(seen)
                for algorithm, seen in classes
            ):
                classes.append((failure.spec.algorithm, failure.signature))
        return classes

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": {
                "budget": self.config.budget,
                "seed": self.config.seed,
                "algorithms": list(self.config.algorithms),
                "n": self.config.n,
                "schedule_rounds": self.config.schedule_rounds,
                "profile": self.config.profile,
                "modes": list(self.config.modes),
                "shrink": self.config.shrink,
                "faults": list(self.config.faults),
            },
            "ok": self.ok,
            "num_cells": self.num_cells,
            "num_failing": self.num_failing,
            "cells": self.cells,
            "failures": [
                {
                    "cell_id": failure.spec.cell_id,
                    "signature": failure.signature.to_dict(),
                    "reproducer": failure.reproducer.to_dict(),
                    "shrink": (
                        None
                        if failure.shrink is None
                        else {
                            "rounds_before": failure.shrink.rounds_before,
                            "rounds_after": failure.shrink.rounds_after,
                            "events_before": failure.shrink.events_before,
                            "events_after": failure.shrink.events_after,
                            "n_before": failure.shrink.n_before,
                            "n_after": failure.shrink.n_after,
                            "candidates_tried": failure.shrink.candidates_tried,
                            "cache_hits": failure.shrink.cache_hits,
                        }
                    ),
                    "corpus_id": failure.corpus_id,
                }
                for failure in self.failures
            ],
        }


def _scripted_twin(spec: ExperimentSpec) -> ExperimentSpec:
    """The fuzz cell's schedule as an explicit scripted cell (same bits)."""
    from .shrink import materialize_trace

    data = spec.to_dict()
    data.update(
        adversary="scripted",
        rounds=None,
        adversary_params={"trace": materialize_trace(spec).to_dict()},
    )
    return ExperimentSpec.from_dict(data)


def run_fuzz(
    config: FuzzConfig,
    *,
    corpus: Optional[CorpusStore] = None,
    progress: Optional[ProgressCallback] = None,
) -> FuzzReport:
    """Run one fuzzing session; see the module docstring for the loop.

    Shrinking is attempted once per *new* failure class (signature-matching
    failures of later cells reuse the first reproducer), and minimized
    reproducers are appended to ``corpus`` (deduplicated by schedule).
    """
    report = FuzzReport(config=config)
    # Failure classes already banked as OPEN bugs (in this session or a
    # previous one): later failures of a known class are recorded but not
    # re-shrunk/re-banked.  Classes are scoped per algorithm -- two different
    # algorithms diverging on overlapping summary fields are different bugs
    # -- and fixed bugs (expect == "pass") deliberately do not count: a
    # regression of a fixed class is new and deserves its own reproducer.
    known_classes: List[Tuple[str, FailureSignature]] = (
        [
            (entry.algorithm, entry.signature)
            for entry in corpus.entries()
            if entry.expect == "fail"
        ]
        if corpus is not None
        else []
    )
    for index in range(config.budget):
        spec = config.cell_spec(index)
        with TELEMETRY.span("fuzz.schedule"):
            signature, _ = evaluate_spec(spec, config.modes)
        record = {
            "cell_id": spec.cell_id,
            "algorithm": spec.algorithm,
            "seed": spec.seed,
            "ok": not signature.is_failure,
            "signature": signature.to_dict(),
        }
        report.cells.append(record)
        if signature.is_failure:
            failure = FuzzFailure(
                spec=spec, scripted=_scripted_twin(spec), signature=signature
            )
            # The new part of this failure, after subtracting every class
            # already known for this algorithm.  A failure whose components
            # are all known is skipped; one that mixes a known class with a
            # fresh one is shrunk *against the fresh part*, so a new bug
            # first surfacing tangled with a banked one still gets its own
            # minimized reproducer.
            fresh = signature.residual(
                [prior for algorithm, prior in known_classes if algorithm == spec.algorithm]
            )
            known_classes.append((spec.algorithm, signature))
            if config.shrink and fresh.is_failure:
                shrinker = Shrinker(
                    config.modes, max_candidates=config.max_shrink_candidates
                )
                with TELEMETRY.span("fuzz.shrink"):
                    failure.shrink = shrinker.shrink(failure.scripted, fresh)
            if corpus is not None and fresh.is_failure:
                reproducer = failure.reproducer
                entry = CorpusEntry(
                    algorithm=reproducer.algorithm,
                    n=reproducer.n,
                    trace=reproducer.adversary_params["trace"],
                    signature=fresh,
                    expect="fail",
                    modes=config.modes,
                    drain=reproducer.drain,
                    faults=reproducer.faults,
                    fault_params=dict(reproducer.fault_params),
                    seed=reproducer.seed,
                    note=f"found by fuzzing (cell {spec.cell_id})",
                    provenance={
                        "base_seed": config.seed,
                        "cell_index": index,
                        "cell_seed": spec.seed,
                        "profile": config.profile,
                        "schedule_rounds": config.schedule_rounds,
                        "shrunk": failure.shrink is not None,
                        "full_signature": signature.to_dict(),
                    },
                )
                if corpus.add(entry):
                    failure.corpus_id = entry.entry_id
            report.failures.append(failure)
        if TELEMETRY.enabled:
            # Heartbeat: long --budget runs tail the telemetry JSONL to see
            # budget consumed, failures banked, and the latest signature.
            TELEMETRY.count("fuzz.schedules")
            if signature.is_failure:
                TELEMETRY.count("fuzz.failures")
            TELEMETRY.gauge("fuzz.budget_used", index + 1)
            TELEMETRY.gauge("fuzz.budget_total", config.budget)
            TELEMETRY.gauge("fuzz.failures_banked", len(report.failures))
            TELEMETRY.gauge("fuzz.last_signature", signature.describe())
            TELEMETRY.tick()
        if progress is not None:
            progress(record, index + 1, config.budget)
    return report
