"""Seeded schedule fuzzing: adversarial topology schedules from composable phases.

The hand-written adversaries of :mod:`repro.adversary` each realize *one*
worst case of the paper.  The fuzzer composes the ingredients of all of them
-- random churn bursts, quiet gaps, delete/re-insert interleavings, node
isolation, and spliced copies of the Section 1.3 flickering-triangle gadget --
into seeded random schedules, which is how both real bugs found so far (the
robust3hop delete+re-insert knowledge loss and the quiescence-contract latch)
were originally triggered.

A generated schedule is a plain :class:`~repro.simulator.trace.TopologyTrace`
(the ``scripted`` adversary's format), so it replays bit-for-bit through every
engine, serializes with campaign results, and feeds directly into the
ddmin shrinker of :mod:`repro.fuzz.shrink`.  Generation is fully deterministic
given ``(n, rounds, seed, profile)``: the differential harness builds the
adversary once per engine mode and relies on both builds producing the same
schedule.

Legality invariant (pinned by the tests): every emitted round deletes only
currently present edges, inserts only currently absent edges, touches each
edge at most once per round, and references only nodes ``0 .. n-1`` -- i.e.
the schedule replays through :class:`~repro.simulator.network.DynamicNetwork`
without a :class:`~repro.simulator.network.TopologyError`.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from ..simulator.trace import TopologyTrace, TraceReplayAdversary

__all__ = [
    "PROFILES",
    "ScheduleFuzzer",
    "generate_trace",
    "build_fuzz_adversary",
]

Edge = Tuple[int, int]
Round = Tuple[List[Edge], List[Edge]]  # (insertions, deletions)

#: Named phase mixes.  ``mixed`` is the default fuzzing diet; ``churn`` is
#: pure random churn (the PR 3 property-test workload); ``gadgets`` leans on
#: the structured phases (flicker splices, isolation, re-insert interleavings)
#: that target temporal-pattern bookkeeping.
PROFILES: Dict[str, Dict[str, int]] = {
    "mixed": {
        "churn_burst": 4,
        "quiet_gap": 2,
        "flicker_splice": 2,
        "isolation": 2,
        "reinsert_interleave": 3,
        "batch_blast": 1,
    },
    "churn": {"churn_burst": 6, "quiet_gap": 1},
    "gadgets": {
        "flicker_splice": 3,
        "isolation": 2,
        "reinsert_interleave": 3,
        "quiet_gap": 1,
        "churn_burst": 1,
    },
    # Fault-shaped schedules: node crashes (cut everything incident, hold
    # down, re-attach) and partitions (cut every crossing edge, hold, heal)
    # as *topology* events, so fault-triggered divergences shrink through the
    # ordinary ddmin pipeline.  A separate profile -- extending the existing
    # mixes would reshuffle their RNG streams and invalidate pinned seeds.
    "faults": {
        "crash_splice": 3,
        "partition_splice": 3,
        "churn_burst": 2,
        "reinsert_interleave": 1,
        "quiet_gap": 1,
    },
}


class ScheduleFuzzer:
    """Generates legal adversarial schedules from weighted random phases.

    Args:
        n: number of nodes the schedule may reference (``>= 3``; the gadget
            phases need a triangle's worth of distinct nodes).
        seed: RNG seed; schedules are deterministic given the constructor
            arguments.
        profile: phase mix, one of :data:`PROFILES`.
        max_events_per_round: churn-burst event cap per round.
    """

    def __init__(
        self,
        n: int,
        seed: int = 0,
        *,
        profile: str = "mixed",
        max_events_per_round: int = 3,
    ) -> None:
        if n < 3:
            raise ValueError(f"the schedule fuzzer needs n >= 3, got {n}")
        if profile not in PROFILES:
            raise ValueError(f"unknown fuzz profile {profile!r}; choose from {sorted(PROFILES)}")
        if max_events_per_round < 1:
            raise ValueError("max_events_per_round must be positive")
        self.n = n
        self.profile = profile
        self.max_events_per_round = max_events_per_round
        self._rng = random.Random(seed)
        self._present: set[Edge] = set()
        self._phases = sorted(PROFILES[profile])
        self._weights = [PROFILES[profile][name] for name in self._phases]

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def generate(self, num_rounds: int) -> TopologyTrace:
        """Generate a legal schedule of exactly ``num_rounds`` rounds.

        Each call starts from an empty graph again (every schedule replays
        against a fresh network), so a reused fuzzer stays legal; only the
        RNG stream carries over between calls.
        """
        if num_rounds < 0:
            raise ValueError("num_rounds must be non-negative")
        self._present.clear()
        rounds: List[Round] = []
        while len(rounds) < num_rounds:
            phase = self._rng.choices(self._phases, weights=self._weights)[0]
            rounds.extend(getattr(self, f"_phase_{phase}")())
        trace = TopologyTrace(n=self.n)
        trace.rounds.extend(rounds[:num_rounds])
        return trace

    # ------------------------------------------------------------------ #
    # Edge bookkeeping
    # ------------------------------------------------------------------ #
    def _random_pair(self) -> Edge:
        u = self._rng.randrange(self.n)
        w = self._rng.randrange(self.n - 1)
        if w >= u:
            w += 1
        return (u, w) if u < w else (w, u)

    def _emit(self, insert: List[Edge] = (), delete: List[Edge] = ()) -> Round:
        """Record a round's effect on the present set and return the round."""
        for e in delete:
            self._present.discard(e)
        for e in insert:
            self._present.add(e)
        return (sorted(insert), sorted(delete))

    # ------------------------------------------------------------------ #
    # Phases.  Each returns a list of legal rounds and keeps ``_present``
    # in sync; the generate loop concatenates (and finally truncates) them.
    # ------------------------------------------------------------------ #
    def _phase_churn_burst(self) -> List[Round]:
        rounds: List[Round] = []
        for _ in range(self._rng.randint(1, 4)):
            inserts: List[Edge] = []
            deletes: List[Edge] = []
            touched: set[Edge] = set()
            for _ in range(self._rng.randint(1, self.max_events_per_round)):
                pair = self._random_pair()
                if pair in touched:
                    continue
                touched.add(pair)
                if pair in self._present:
                    deletes.append(pair)
                else:
                    inserts.append(pair)
            rounds.append(self._emit(insert=inserts, delete=deletes))
        return rounds

    def _phase_quiet_gap(self) -> List[Round]:
        return [self._emit() for _ in range(self._rng.randint(1, 2))]

    def _phase_flicker_splice(self) -> List[Round]:
        """Splice a Section 1.3 gadget: build a triangle, flicker its far edge."""
        v, u, w = self._rng.sample(range(self.n), 3)
        legs = sorted(
            e
            for e in (tuple(sorted((v, u))), tuple(sorted((v, w))))
            if e not in self._present
        )
        far = tuple(sorted((u, w)))
        rounds: List[Round] = []
        setup: List[Edge] = list(legs)
        if far not in self._present:
            setup.append(far)
        if setup:
            rounds.append(self._emit(insert=setup))
        for _ in range(self._rng.randint(1, 3)):
            rounds.append(self._emit(delete=[far]))
            rounds.append(self._emit(insert=[far]))
        if self._rng.random() < 0.5:
            rounds.append(self._emit(delete=[far]))
        return rounds

    def _phase_isolation(self) -> List[Round]:
        """Cut every present edge at one node, then optionally rewire some."""
        candidates = sorted({x for e in self._present for x in e})
        if not candidates:
            return self._phase_churn_burst()
        victim = self._rng.choice(candidates)
        incident = sorted(e for e in self._present if victim in e)
        rounds = [self._emit(delete=incident)]
        if self._rng.random() < 0.5:
            rounds.append(self._emit())  # let the deletions propagate a round
        if self._rng.random() < 0.7:
            rewire = [e for e in incident if self._rng.random() < 0.5]
            if rewire:
                rounds.append(self._emit(insert=rewire))
        return rounds

    def _phase_reinsert_interleave(self) -> List[Round]:
        """Delete/re-insert one edge in consecutive rounds (backlog hazard)."""
        absent = [
            (u, w)
            for u in range(self.n)
            for w in range(u + 1, self.n)
            if (u, w) not in self._present
        ]
        # On a complete graph only the delete-first flavour is possible (and
        # vice versa on an empty one), so the coin is overridden at the edges.
        if self._present and (not absent or self._rng.random() < 0.7):
            edge = self._rng.choice(sorted(self._present))
            rounds = [self._emit(delete=[edge]), self._emit(insert=[edge])]
        else:
            edge = self._rng.choice(absent)
            rounds = [
                self._emit(insert=[edge]),
                self._emit(delete=[edge]),
                self._emit(insert=[edge]),
            ]
        if self._rng.random() < 0.3:
            rounds.append(self._emit(delete=[edge]))
        return rounds

    def _phase_crash_splice(self) -> List[Round]:
        """Crash one node: cut its incident edges, hold it down, re-attach.

        The schedule-level mirror of the ``crash`` fault model's clean-stop
        variant -- the node vanishes from the topology for a few rounds and
        (usually) gets most of its edges back, exercising the same stale-
        knowledge hazards without needing a fault plan to replay.
        """
        candidates = sorted({x for e in self._present for x in e})
        if not candidates:
            return self._phase_churn_burst()
        victim = self._rng.choice(candidates)
        incident = sorted(e for e in self._present if victim in e)
        rounds = [self._emit(delete=incident)]
        for _ in range(self._rng.randint(1, 3)):
            rounds.append(self._emit())  # downtime: the node stays isolated
        revive = [e for e in incident if self._rng.random() < 0.8]
        if revive:
            rounds.append(self._emit(insert=revive))
        return rounds

    def _phase_partition_splice(self) -> List[Round]:
        """Partition the graph: cut every crossing edge, hold, then heal."""
        side = {v for v in range(self.n) if self._rng.random() < 0.5}
        crossing = sorted(
            e for e in self._present if (e[0] in side) != (e[1] in side)
        )
        if not crossing:
            return self._phase_churn_burst()
        rounds = [self._emit(delete=crossing)]
        for _ in range(self._rng.randint(1, 3)):
            rounds.append(self._emit())  # the halves evolve separately
        heal = [e for e in crossing if self._rng.random() < 0.9]
        if heal:
            rounds.append(self._emit(insert=heal))
        return rounds

    def _phase_batch_blast(self) -> List[Round]:
        """One dense burst of insertions (batch-adversary style)."""
        inserts: set[Edge] = set()
        for _ in range(self._rng.randint(2, max(3, self.n))):
            pair = self._random_pair()
            if pair not in self._present:
                inserts.add(pair)
        if not inserts:
            return [self._emit()]
        return [self._emit(insert=sorted(inserts))]


def generate_trace(
    n: int,
    num_rounds: int,
    seed: int,
    *,
    profile: str = "mixed",
    max_events_per_round: int = 3,
) -> TopologyTrace:
    """One-shot helper: the schedule a fresh :class:`ScheduleFuzzer` generates."""
    fuzzer = ScheduleFuzzer(
        n, seed, profile=profile, max_events_per_round=max_events_per_round
    )
    return fuzzer.generate(num_rounds)


def build_fuzz_adversary(
    n: int, rounds: Optional[int], seed: int, params: Dict[str, Any]
) -> TraceReplayAdversary:
    """Registry builder for the ``fuzz`` adversary (see ``ADVERSARIES``).

    ``rounds`` is the spec's round budget (schedule length; default 30 when
    the spec leaves it open); ``params`` accepts ``profile``,
    ``max_events_per_round`` and an optional ``num_rounds`` override.  The
    generated schedule is deterministic given the spec, so differential runs
    rebuild the identical adversary per engine mode.
    """
    params = dict(params)
    num_rounds = int(params.pop("num_rounds", rounds if rounds is not None else 30))
    profile = params.pop("profile", "mixed")
    max_events = int(params.pop("max_events_per_round", 3))
    if params:
        raise ValueError(f"unexpected fuzz params: {sorted(params)}")
    trace = generate_trace(
        n, num_rounds, seed, profile=profile, max_events_per_round=max_events
    )
    return TraceReplayAdversary(trace)
