"""Schedule fuzzing and divergence shrinking.

The subsystem that turns "a campaign cell failed somewhere in a
multi-thousand-round trace" into a one-screen reproducer:

* :mod:`repro.fuzz.generators` -- seeded adversarial schedule generation
  (churn bursts, quiet gaps, flicker-gadget splices, node isolation,
  delete/re-insert interleavings) in the scripted-trace format;
* :mod:`repro.fuzz.signature` -- failure classes and schedule fingerprints;
* :mod:`repro.fuzz.shrink` -- the ddmin shrinker re-validating every
  candidate through the differential harness;
* :mod:`repro.fuzz.corpus` -- the JSONL reproducer corpus the tier-1 tests
  replay as permanent regressions;
* :mod:`repro.fuzz.driver` -- the generate/verify/shrink/bank loop behind
  ``repro-dynamic-subgraphs fuzz``;
* :mod:`repro.fuzz.injected` -- deliberately broken builds for exercising
  the pipeline end to end.

``generators`` only depends on the simulator layer (the ``fuzz`` adversary
registry entry imports it); everything else pulls in the experiments and
verification stacks and is therefore loaded lazily (PEP 562), keeping the
registry import acyclic.
"""

from .generators import PROFILES, ScheduleFuzzer, build_fuzz_adversary, generate_trace

#: Lazily loaded names (these modules import repro.experiments /
#: repro.verification, which in turn import the registry that imports us).
_LAZY_EXPORTS = {
    "FailureSignature": "signature",
    "evaluate_spec": "signature",
    "trace_fingerprint": "signature",
    "ShrinkResult": "shrink",
    "Shrinker": "shrink",
    "legalize": "shrink",
    "materialize_trace": "shrink",
    "shrink_failure": "shrink",
    "CorpusEntry": "corpus",
    "CorpusStore": "corpus",
    "ReplayOutcome": "corpus",
    "FuzzConfig": "driver",
    "FuzzFailure": "driver",
    "FuzzReport": "driver",
    "run_fuzz": "driver",
    "INJECTED_BUGS": "injected",
    "inject_bug": "injected",
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        from importlib import import_module

        module = import_module(f".{_LAZY_EXPORTS[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PROFILES",
    "ScheduleFuzzer",
    "build_fuzz_adversary",
    "generate_trace",
    *sorted(_LAZY_EXPORTS),
]
