"""Deliberately broken algorithm builds for exercising the fuzz pipeline.

The fuzzer's end-to-end story ("random schedule -> differential failure ->
ddmin -> one-screen reproducer") needs a build that actually fails.  This
module ships two deterministic, seeded-bug variants modelled on the two real
bugs previous PRs fixed:

* ``triangle_ghost_deletes`` -- a :class:`TriangleMembershipNode` that drops
  far-edge DELETE announcements whose endpoint ids sum to an odd number, so
  consistent nodes keep believing in ghost triangles (caught by the
  ``no_ghost_triangles`` / ``triangle_oracle`` checks; the class of the PR 3
  robust3hop knowledge-loss bug).
* ``robust2hop_quiescence_latch`` -- a :class:`RobustTwoHopNode` that claims
  quiescence unconditionally, violating the sparse engine's contract exactly
  like the ``_queue_empty_at_send`` latch PR 3 fixed: the sparse run diverges
  from dense (or livelocks in the drain, which the quiet-round fast-forward
  turns into an immediate error).

:func:`inject_bug` swaps the *real* registry entry for the buggy variant --
an "injected-bug build" -- so the whole stack (spec validation, applicable
checks, campaign cells) treats the broken algorithm as the genuine article.
It returns a restore callable; the ``fuzz`` CLI applies it process-wide
behind the ``--inject-bug`` flag and tests restore in ``finally`` blocks.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..core.robust2hop import RobustTwoHopNode
from ..core.triangle import TriangleMembershipNode
from ..simulator.messages import EdgeOp

__all__ = [
    "INJECTED_BUGS",
    "GhostDeleteTriangleNode",
    "LatchedQuiescenceRobustTwoHopNode",
    "inject_bug",
]


class GhostDeleteTriangleNode(TriangleMembershipNode):
    """Injected bug: selectively deaf to far-edge deletion announcements."""

    def _apply_pattern_a(self, sender, edge, op):
        if (
            op is EdgeOp.DELETE
            and self.node_id not in edge
            and (edge[0] + edge[1]) % 2 == 1
        ):
            return  # the bug: this deletion never reaches the claim table
        super()._apply_pattern_a(sender, edge, op)


class LatchedQuiescenceRobustTwoHopNode(RobustTwoHopNode):
    """Injected bug: reports quiescence even with a backlogged queue."""

    def is_quiescent(self) -> bool:
        return True


#: name -> (registry algorithm it replaces, buggy factory).
INJECTED_BUGS: Dict[str, Tuple[str, Callable]] = {
    "triangle_ghost_deletes": ("triangle", GhostDeleteTriangleNode),
    "robust2hop_quiescence_latch": ("robust2hop", LatchedQuiescenceRobustTwoHopNode),
}


def inject_bug(name: str) -> Callable[[], None]:
    """Swap a registry algorithm for its buggy variant; returns the restorer."""
    from ..experiments.registry import ALGORITHMS

    if name not in INJECTED_BUGS:
        raise ValueError(f"unknown injected bug {name!r}; choose from {sorted(INJECTED_BUGS)}")
    target, factory = INJECTED_BUGS[name]
    previous = ALGORITHMS[target]
    ALGORITHMS[target] = factory

    def restore() -> None:
        ALGORITHMS[target] = previous

    return restore
