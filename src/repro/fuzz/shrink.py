"""ddmin-style shrinking of diverging / check-failing schedules.

Given any failing cell (a :class:`~repro.verification.differential.Divergence`,
a structured check failure, or a run that raises), the shrinker produces a
*minimal* scripted trace that still reproduces the same failure class, by
repeatedly deleting rounds and events and renaming nodes and re-validating
every candidate through the differential harness:

1. **Round ddmin** -- delete contiguous chunks of rounds (halving chunk size
   down to single rounds).
2. **Event ddmin** -- delete chunks of individual insert/delete events.
3. **Empty-round elision** -- drop quiet rounds entirely.
4. **Node renaming** -- compact the referenced node ids to ``0 .. k-1`` and
   shrink ``n`` accordingly (this is why scripted replay is strict about
   out-of-range node ids).

Deleting events can orphan later ones (a delete of a never-inserted edge), so
every candidate is first passed through :func:`legalize`, which drops events
that are illegal against the running edge set -- re-validation then decides
whether the legalized schedule still reproduces.  Verdicts are cached by
schedule fingerprint, because ddmin revisits overlapping candidates.

Every *accepted* reduction step reproduces the original failure class by
construction (a candidate is only kept when :meth:`FailureSignature.matches`
holds), shrinking is deterministic, and re-shrinking a minimized schedule is
a no-op -- invariants pinned by ``tests/test_fuzz_shrinker.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..experiments.spec import ExperimentSpec
from ..obs.telemetry import TELEMETRY
from ..simulator.trace import TopologyTrace
from .generators import build_fuzz_adversary
from .signature import FailureSignature, evaluate_spec, trace_fingerprint

__all__ = ["ShrinkResult", "Shrinker", "legalize", "materialize_trace", "shrink_failure"]

Edge = Tuple[int, int]
Round = Tuple[List[Edge], List[Edge]]


def _canon(edge) -> Edge:
    a, b = int(edge[0]), int(edge[1])
    return (a, b) if a < b else (b, a)


def legalize(rounds: Sequence) -> List[Round]:
    """Drop events that are illegal against the running edge set.

    Keeps, per round, deletions of currently present edges and insertions of
    currently absent ones, at most one event per edge per round (deletions
    win ties, mirroring :meth:`RoundChanges.of`'s delete-first ordering).
    A legal schedule passes through unchanged.
    """
    present: set[Edge] = set()
    out: List[Round] = []
    for ins, dels in rounds:
        touched: set[Edge] = set()
        keep_dels: List[Edge] = []
        keep_ins: List[Edge] = []
        for e in map(_canon, dels):
            if e in present and e not in touched:
                keep_dels.append(e)
                touched.add(e)
                present.discard(e)
        for e in map(_canon, ins):
            if e not in present and e not in touched:
                keep_ins.append(e)
                touched.add(e)
                present.add(e)
        out.append((keep_ins, keep_dels))
    return out


def materialize_trace(spec: ExperimentSpec) -> TopologyTrace:
    """The explicit schedule a spec's adversary realizes.

    ``scripted`` cells carry it inline (or as a file), ``fuzz`` cells
    regenerate it from the seed; for anything else the adversary is re-driven
    against a bare network (assuming an always-consistent view, which holds
    for every open-loop adversary).
    """
    if spec.adversary == "scripted":
        params = dict(spec.adversary_params)
        if "trace" in params:
            return TopologyTrace.from_dict(params["trace"])
        return TopologyTrace.load(params["trace_path"])
    if spec.adversary == "fuzz":
        # The builder the registry uses, so defaults can never drift between
        # the schedule that ran and the schedule being materialized.
        return build_fuzz_adversary(
            spec.n, spec.rounds, spec.seed, dict(spec.adversary_params)
        ).trace
    from ..experiments.registry import build_adversary
    from ..simulator.adversary import AdversaryView
    from ..simulator.network import DynamicNetwork

    adversary = build_adversary(
        spec.adversary, n=spec.n, rounds=spec.rounds, seed=spec.seed,
        params=spec.adversary_params,
    )
    network = DynamicNetwork(spec.n)
    trace = TopologyTrace(n=spec.n)
    budget = spec.rounds if spec.rounds is not None else 10_000
    while trace.num_rounds < budget and not adversary.is_done:
        view = AdversaryView.from_network(network, network.round_index + 1, True)
        changes = adversary.changes_for_round(view)
        if changes is None:
            break
        network.apply_changes(network.round_index + 1, changes)
        trace.append(changes)
    return trace


@dataclass
class ShrinkResult:
    """What one shrink session did and what it ended with."""

    original: ExperimentSpec
    minimized: ExperimentSpec
    signature: FailureSignature
    rounds_before: int
    rounds_after: int
    events_before: int
    events_after: int
    n_before: int
    n_after: int
    candidates_tried: int = 0
    cache_hits: int = 0
    accepted_steps: int = 0

    @property
    def trace_dict(self) -> Dict:
        """The minimized schedule in the scripted adversary's inline format."""
        return self.minimized.adversary_params["trace"]

    def describe(self) -> str:
        return (
            f"shrunk {self.rounds_before} rounds / {self.events_before} events / "
            f"n={self.n_before} -> {self.rounds_after} rounds / "
            f"{self.events_after} events / n={self.n_after} "
            f"({self.candidates_tried} candidates, {self.cache_hits} cache hits); "
            f"failure: {self.signature.describe()}"
        )


def _num_events(rounds: Sequence[Round]) -> int:
    return sum(len(ins) + len(dels) for ins, dels in rounds)


class Shrinker:
    """Minimizes failing schedules through the differential harness.

    Args:
        modes: engine modes each candidate is re-validated under (the same
            modes the failure was observed with, normally).
        max_candidates: harness-run budget; when exhausted, the best
            reduction found so far is returned.
        min_n: smallest network the node-renaming pass may produce.
        progress: optional ``progress(event, detail)`` callback
            (``event in {"candidate", "accepted", "pass"}``).
    """

    def __init__(
        self,
        modes: Sequence[str] = ("dense", "sparse"),
        *,
        max_candidates: int = 1500,
        min_n: int = 2,
        progress: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.modes = tuple(modes)
        self.max_candidates = max_candidates
        self.min_n = min_n
        self.progress = progress
        self._cache: Dict[str, bool] = {}
        self._tried = 0
        self._cache_hits = 0
        self._accepted = 0

    # ------------------------------------------------------------------ #
    # Candidate evaluation
    # ------------------------------------------------------------------ #
    def _spec_for(self, template: ExperimentSpec, rounds: Sequence[Round], n: int) -> ExperimentSpec:
        data = template.to_dict()
        data.update(
            adversary="scripted",
            n=n,
            rounds=None,
            adversary_params={
                "trace": {
                    "n": n,
                    "rounds": [
                        {"insert": [list(e) for e in ins], "delete": [list(e) for e in dels]}
                        for ins, dels in rounds
                    ],
                }
            },
            checks=[],
            record_trace=True,
        )
        return ExperimentSpec.from_dict(data)

    def _reproduces(
        self, template: ExperimentSpec, target: FailureSignature, rounds: Sequence[Round], n: int
    ) -> bool:
        rounds = legalize(rounds)
        key = trace_fingerprint(template.algorithm, n, rounds, drain=template.drain)
        if key in self._cache:
            self._cache_hits += 1
            if TELEMETRY.enabled:
                TELEMETRY.count("fuzz.shrink_cache_hits")
            return self._cache[key]
        if self._tried >= self.max_candidates:
            return False  # budget exhausted: stop accepting further reductions
        self._tried += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("fuzz.shrink_candidates")
        signature, _ = evaluate_spec(self._spec_for(template, rounds, n), self.modes)
        verdict = signature.matches(target)
        self._cache[key] = verdict
        if self.progress is not None:
            self.progress("candidate", f"{len(rounds)} rounds -> {signature.describe()}")
        return verdict

    # ------------------------------------------------------------------ #
    # Reduction passes
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ddmin(items: List, reproduces: Callable[[List], bool]) -> List:
        """Complement-based ddmin: greedily delete chunks, halving chunk size."""
        chunk = max(1, len(items) // 2)
        while True:
            reduced = False
            start = 0
            while start < len(items):
                candidate = items[:start] + items[start + chunk:]
                if len(candidate) < len(items) and reproduces(candidate):
                    items = candidate
                    reduced = True
                else:
                    start += chunk
            if not reduced:
                if chunk == 1:
                    return items
                chunk = max(1, chunk // 2)

    def _pass_rounds(self, template, target, rounds: List[Round], n: int) -> List[Round]:
        return self._ddmin(rounds, lambda cand: self._reproduces(template, target, cand, n))

    def _pass_events(self, template, target, rounds: List[Round], n: int) -> List[Round]:
        flat = [
            (i, kind, e)
            for i, (ins, dels) in enumerate(rounds)
            for kind, edges in (("i", ins), ("d", dels))
            for e in edges
        ]

        def rebuild(events: List) -> List[Round]:
            out: List[Round] = [([], []) for _ in rounds]
            for i, kind, e in events:
                out[i][0 if kind == "i" else 1].append(e)
            return out

        kept = self._ddmin(
            flat, lambda cand: self._reproduces(template, target, rebuild(cand), n)
        )
        return rebuild(kept)

    def _pass_drop_empty(self, template, target, rounds: List[Round], n: int) -> List[Round]:
        compact = [r for r in rounds if r[0] or r[1]]
        if len(compact) < len(rounds) and self._reproduces(template, target, compact, n):
            return compact
        return rounds

    def _pass_rename(
        self, template, target, rounds: List[Round], n: int
    ) -> Tuple[List[Round], int]:
        used = sorted({x for ins, dels in rounds for e in ins + dels for x in e})
        new_n = max(len(used), self.min_n)
        mapping = {old: i for i, old in enumerate(used)}
        if new_n >= n and all(mapping[x] == x for x in used):
            return rounds, n
        renamed = [
            (
                sorted(_canon((mapping[a], mapping[b])) for a, b in ins),
                sorted(_canon((mapping[a], mapping[b])) for a, b in dels),
            )
            for ins, dels in rounds
        ]
        if self._reproduces(template, target, renamed, new_n):
            return renamed, new_n
        # Renaming may perturb id-dependent behavior; try only shrinking n to
        # the highest referenced id without touching the ids themselves.
        tight_n = max(max(used, default=1) + 1, self.min_n)
        if tight_n < n and self._reproduces(template, target, rounds, tight_n):
            return rounds, tight_n
        return rounds, n

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def shrink(
        self, spec: ExperimentSpec, signature: Optional[FailureSignature] = None
    ) -> ShrinkResult:
        """Minimize ``spec``'s schedule while it reproduces ``signature``.

        ``signature`` defaults to whatever failure the spec currently
        exhibits; a spec that does not fail is rejected (there is nothing to
        preserve).  Returns the :class:`ShrinkResult` whose ``minimized``
        spec is a self-contained ``scripted`` cell.
        """
        rounds = legalize(
            [(list(map(_canon, ins)), list(map(_canon, dels))) for ins, dels in
             materialize_trace(spec).rounds]
        )
        n = spec.n
        if signature is None:
            signature, _ = evaluate_spec(self._spec_for(spec, rounds, n), self.modes)
        if not signature.is_failure:
            raise ValueError(
                f"cell {spec.cell_id} does not fail under modes {self.modes}; "
                "nothing to shrink"
            )
        before_rounds, before_events, before_n = len(rounds), _num_events(rounds), n

        while True:
            progress_snapshot = (len(rounds), _num_events(rounds), n)
            for name in ("rounds", "events", "drop_empty"):
                handler = getattr(self, f"_pass_{name}")
                candidate = legalize(handler(spec, signature, rounds, n))
                if candidate != rounds:
                    self._accepted += 1
                rounds = candidate
                if self.progress is not None:
                    self.progress("pass", f"{name}: {len(rounds)} rounds")
            rounds, n = self._pass_rename(spec, signature, rounds, n)
            if (len(rounds), _num_events(rounds), n) == progress_snapshot:
                break
            if self._tried >= self.max_candidates:
                break

        minimized = self._spec_for(spec, rounds, n)
        return ShrinkResult(
            original=spec,
            minimized=minimized,
            signature=signature,
            rounds_before=before_rounds,
            rounds_after=len(rounds),
            events_before=before_events,
            events_after=_num_events(rounds),
            n_before=before_n,
            n_after=n,
            candidates_tried=self._tried,
            cache_hits=self._cache_hits,
            accepted_steps=self._accepted,
        )


def shrink_failure(
    spec: ExperimentSpec,
    signature: Optional[FailureSignature] = None,
    *,
    modes: Sequence[str] = ("dense", "sparse"),
    max_candidates: int = 1500,
    progress: Optional[Callable[[str, str], None]] = None,
) -> ShrinkResult:
    """Convenience wrapper: one fresh :class:`Shrinker` session."""
    return Shrinker(modes, max_candidates=max_candidates, progress=progress).shrink(
        spec, signature
    )
