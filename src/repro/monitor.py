"""A high-level, application-facing API over the distributed data structures.

This module is the historical front door and is kept as a thin compatibility
facade: the implementation moved into the serving subsystem
(:mod:`repro.serve`), where it became the middle layer of a full serving
stack -- event-stream ingestion (:mod:`repro.serve.ingest`), the monitor
itself (:mod:`repro.serve.core`) and standing subscriptions
(:mod:`repro.serve.subscriptions`) wired together by
:class:`repro.serve.MonitorService`.

An application that simply *has* a dynamic graph (an overlay manager, a
stream of link up/down events, a test harness of its own) still uses this
surface unchanged:

    "Here are this tick's edge changes.  Which triangles / cliques / cycles
     does node v currently belong to, and can it answer right now?"

Example::

    monitor = DynamicGraphMonitor(n=50, structure="clique")
    monitor.update(insert=[(0, 1), (1, 2), (0, 2)])
    monitor.settle()                      # let announcements propagate
    monitor.is_triangle(0, 1, 2)          # MonitorAnswer(value=True, definite=True)
    monitor.triangles_of(1)               # {frozenset({0, 1, 2})}
    monitor.amortized_round_complexity    # the paper's measure, so far

Applications that want standing queries over a live event feed should hold a
:class:`repro.serve.MonitorService` instead.
"""

from __future__ import annotations

from .serve.core import STRUCTURES, MonitorAnswer, ServingMonitor

__all__ = ["MonitorAnswer", "DynamicGraphMonitor", "STRUCTURES"]


class DynamicGraphMonitor(ServingMonitor):
    """The :class:`~repro.serve.core.ServingMonitor` under its historical name."""
