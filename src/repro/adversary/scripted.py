"""Adversaries with an explicit, fully predetermined schedule.

:class:`ScriptedAdversary` replays a literal list of per-round batches; it is
the workhorse of the unit tests, which construct precise interleavings of
insertions and deletions to exercise specific code paths of the algorithms.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..simulator.adversary import Adversary, AdversaryView
from ..simulator.events import RoundChanges
from ..simulator.trace import TopologyTrace

__all__ = ["ScriptedAdversary"]


class ScriptedAdversary(Adversary):
    """Replays a fixed list of round batches, then reports it is done.

    Args:
        rounds: one entry per round; each entry is either a
            :class:`RoundChanges`, a pair ``(insert_edges, delete_edges)``, or
            ``None`` for a quiet round.
        n: when given, the node count of the network the schedule is meant
            for; any entry referencing a node outside ``range(n)`` is
            rejected up front with a clear error instead of surfacing as a
            mid-run topology failure.  The fuzz shrinker's node-renaming
            pass relies on this strictness.
    """

    def __init__(self, rounds: Iterable, n: Optional[int] = None) -> None:
        self._rounds: List[RoundChanges] = [self._coerce(r) for r in rounds]
        self._cursor = 0
        if n is not None:
            # One strictness implementation for all schedule shapes: pour the
            # batches into a TopologyTrace and reuse its node validation.
            trace = TopologyTrace(n=n)
            for changes in self._rounds:
                trace.append(changes)
            trace.validate_nodes()

    @staticmethod
    def _coerce(entry) -> RoundChanges:
        if entry is None:
            return RoundChanges.empty()
        if isinstance(entry, RoundChanges):
            return entry
        if isinstance(entry, tuple) and len(entry) == 2:
            insert, delete = entry
            return RoundChanges.of(insert=insert, delete=delete)
        raise TypeError(
            f"cannot interpret schedule entry {entry!r}; expected RoundChanges, "
            "(insert, delete) pair, or None"
        )

    # ------------------------------------------------------------------ #
    # Adversary interface
    # ------------------------------------------------------------------ #
    def changes_for_round(self, view: AdversaryView) -> Optional[RoundChanges]:
        if self._cursor >= len(self._rounds):
            return None
        changes = self._rounds[self._cursor]
        self._cursor += 1
        return changes

    @property
    def is_done(self) -> bool:
        return self._cursor >= len(self._rounds)

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def single_batch(
        cls, insert: Sequence[Tuple[int, int]] = (), delete: Sequence[Tuple[int, int]] = ()
    ) -> "ScriptedAdversary":
        """An adversary that applies one batch in round 1 and then stops."""
        return cls([RoundChanges.of(insert=insert, delete=delete)])

    @classmethod
    def one_edge_per_round(cls, edges: Sequence[Tuple[int, int]]) -> "ScriptedAdversary":
        """Insert the given edges one per round, in order."""
        return cls([RoundChanges.inserts([e]) for e in edges])
