"""The Theorem 2 adversary: membership listing of any non-clique H is hard.

Theorem 2 shows that for every ``k``-vertex pattern ``H`` that is **not** the
``k``-clique, membership listing requires ``Ω(n / log n)`` amortized rounds.
The proof is an adversary argument: pick two non-adjacent pattern vertices
``a`` and ``b``, fix ``k - 2`` anchor nodes wired like the rest of ``H``, and
then repeatedly take a fresh node ``u_ℓ``, connect it to the anchors the way
``a`` is connected, wait for the algorithm to stabilize, then rewire it the
way ``b`` is connected.  Because ``a`` and ``b`` are non-adjacent, the
occurrences of ``H`` that ``u_ℓ`` completes involve *earlier* nodes
``u_1 .. u_{ℓ-1}``, and an information-counting argument shows a near-linear
number of bits must cross the constantly-many edges that exist at any time.

:class:`MembershipLowerBoundAdversary` reproduces that schedule faithfully
(including the "wait for the algorithm to stabilize" steps).  Experiment E6
runs it against the Lemma 1 baseline -- the natural algorithm that *can*
answer such membership queries -- and observes the near-linear amortized cost;
:mod:`repro.analysis.information` recomputes the counting bound itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.membership import HPattern
from ..simulator.events import RoundChanges, canonical_edge
from .base import WAIT_FOR_STABILITY, ScheduleAdversary

__all__ = ["MembershipLowerBoundAdversary"]


@dataclass(frozen=True)
class _Iteration:
    """Bookkeeping for one adversary iteration (used by analysis and tests)."""

    index: int
    node: int
    phase_a_edges: Tuple[Tuple[int, int], ...]
    phase_b_edges: Tuple[Tuple[int, int], ...]


class MembershipLowerBoundAdversary(ScheduleAdversary):
    """The N_a / N_b rewiring adversary of Theorem 2.

    Args:
        n: number of nodes available.
        pattern: the non-clique pattern ``H`` (e.g. ``HPattern.path(3)``).
        num_iterations: how many fresh nodes ``u_ℓ`` to cycle through; defaults
            to every node not used as an anchor (capped at ``n - (k - 2)``).

    Attributes:
        anchor_nodes: the ``k - 2`` anchor node ids (pattern vertices other
            than the non-adjacent pair), in pattern-vertex order.
        iterations: the realized iterations (node used, edges of each phase).
    """

    def __init__(
        self,
        n: int,
        pattern: HPattern,
        *,
        num_iterations: Optional[int] = None,
    ) -> None:
        if pattern.is_clique:
            raise ValueError(
                "Theorem 2 applies to non-clique patterns only; clique membership "
                "listing is cheap (Corollary 1)"
            )
        pair = pattern.non_adjacent_pair()
        assert pair is not None  # guaranteed by the non-clique check
        self.pattern = pattern
        self.vertex_a, self.vertex_b = pair
        anchors = [x for x in range(pattern.k) if x not in pair]
        if n < len(anchors) + 1:
            raise ValueError(f"need at least {len(anchors) + 1} nodes for pattern {pattern.name}")
        #: pattern anchor vertex -> network node id (anchors occupy ids 0..k-3).
        self.anchor_map: Dict[int, int] = {vertex: idx for idx, vertex in enumerate(anchors)}
        self.anchor_nodes: List[int] = [self.anchor_map[v] for v in anchors]
        available = n - len(anchors)
        self.num_iterations = (
            available if num_iterations is None else min(num_iterations, available)
        )
        self.iterations: List[_Iteration] = []
        super().__init__(self._build_schedule())

    # ------------------------------------------------------------------ #
    # Schedule construction
    # ------------------------------------------------------------------ #
    def _anchor_edges_for(self, u: int, pattern_vertex: int) -> List[Tuple[int, int]]:
        """Edges connecting ``u`` to the anchors the way ``pattern_vertex`` is connected."""
        edges = []
        for neighbor in sorted(self.pattern.neighbors(pattern_vertex)):
            if neighbor in self.anchor_map:
                edges.append(canonical_edge(u, self.anchor_map[neighbor]))
        return edges

    def _build_schedule(self):
        # Round 1: wire the anchors like the induced pattern on them.
        anchor_edges = []
        for x, y in self.pattern.edges:
            if x in self.anchor_map and y in self.anchor_map:
                anchor_edges.append(canonical_edge(self.anchor_map[x], self.anchor_map[y]))
        if anchor_edges:
            yield RoundChanges.inserts(sorted(set(anchor_edges)))
            yield WAIT_FOR_STABILITY

        first_free = len(self.anchor_nodes)
        for ell in range(self.num_iterations):
            u = first_free + ell
            phase_a = self._anchor_edges_for(u, self.vertex_a)
            phase_b = self._anchor_edges_for(u, self.vertex_b)
            self.iterations.append(
                _Iteration(ell + 1, u, tuple(phase_a), tuple(phase_b))
            )
            # Connect like vertex a, wait for stabilization.
            if phase_a:
                yield RoundChanges.inserts(phase_a)
                yield WAIT_FOR_STABILITY
            # Rewire like vertex b (disconnect everything, reconnect), wait.
            inserts = [e for e in phase_b if e not in phase_a]
            deletes = [e for e in phase_a if e not in phase_b]
            if inserts or deletes:
                yield RoundChanges.of(insert=inserts, delete=deletes)
                yield WAIT_FOR_STABILITY
            # Finally drop the remaining attachment so the next iteration
            # starts from a clean slate for this node (keeps the number of
            # simultaneously-present edges constant, as in the proof).
            if phase_b:
                yield RoundChanges.deletes(phase_b)
                yield WAIT_FOR_STABILITY
