"""Heavy-tailed peer-to-peer churn (the paper's motivating workload).

The introduction of the paper motivates the highly dynamic model with
measurements of large peer-to-peer systems in which peer session lengths are
short on average but heavy-tailed -- some peers stay connected for days while
most churn within minutes.  :class:`HeavyTailedChurnAdversary` synthesises
exactly that behaviour:

* every node alternates between *online sessions* whose lengths are drawn
  from a Pareto distribution (heavy tail) and *offline gaps* drawn from a
  geometric distribution;
* when a node comes online it connects to a few random online peers (its
  links appear); when its session ends all of its links disappear at once,
  which is precisely the "arbitrary number of topology changes per round"
  regime the model allows.

The generator is deterministic given its seed, so benchmarks and tests can
replay identical workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..simulator.adversary import Adversary, AdversaryView
from ..simulator.events import Edge, RoundChanges, canonical_edge

__all__ = ["HeavyTailedChurnAdversary"]


class HeavyTailedChurnAdversary(Adversary):
    """P2P-style churn with Pareto-distributed session lengths.

    Args:
        n: number of nodes (peers).
        num_rounds: number of churn rounds to generate.
        target_degree: how many online peers a newly arrived peer connects to.
        pareto_shape: shape parameter of the session-length distribution
            (smaller = heavier tail); the paper's cited measurement studies
            report heavy tails, so the default is a fairly extreme 1.5.
        mean_session: scale of the session length distribution, in rounds.
        offline_probability: per-round probability that an offline peer comes
            back online.
        seed: RNG seed.
    """

    def __init__(
        self,
        n: int,
        num_rounds: int,
        *,
        target_degree: int = 3,
        pareto_shape: float = 1.5,
        mean_session: float = 10.0,
        offline_probability: float = 0.25,
        seed: int = 0,
    ) -> None:
        if n < 2:
            raise ValueError("need at least two peers")
        self.n = n
        self.num_rounds = num_rounds
        self.target_degree = target_degree
        self.pareto_shape = pareto_shape
        self.mean_session = mean_session
        self.offline_probability = offline_probability
        self._rng = np.random.default_rng(seed)
        self._emitted = 0
        #: Remaining online rounds per currently online peer.
        self._online: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Adversary interface
    # ------------------------------------------------------------------ #
    def changes_for_round(self, view: AdversaryView) -> Optional[RoundChanges]:
        if self._emitted >= self.num_rounds:
            return None
        self._emitted += 1

        current_edges: Set[Edge] = set(view.edges)
        deletes: List[Edge] = []
        inserts: List[Edge] = []

        # 1. Age online sessions; peers whose session ends drop all their links.
        departing = [v for v, remaining in self._online.items() if remaining <= 0]
        for v in departing:
            del self._online[v]
            for edge in [e for e in current_edges if v in e]:
                deletes.append(edge)
                current_edges.discard(edge)
        for v in self._online:
            self._online[v] -= 1

        # 2. Offline peers come online with the configured probability and
        #    connect to a few random online peers.  Peers whose session ended
        #    this very round stay offline until at least the next round, so a
        #    single batch never inserts an edge it also deletes.
        offline = [v for v in range(self.n) if v not in self._online and v not in departing]
        for v in offline:
            if self._rng.random() >= self.offline_probability:
                continue
            session = self._draw_session_length()
            self._online[v] = session
            peers = [p for p in self._online if p != v]
            if not peers:
                continue
            count = min(self.target_degree, len(peers))
            chosen = self._rng.choice(len(peers), size=count, replace=False)
            for idx in chosen:
                edge = canonical_edge(v, peers[int(idx)])
                if edge not in current_edges:
                    inserts.append(edge)
                    current_edges.add(edge)

        return RoundChanges.of(insert=inserts, delete=deletes)

    @property
    def is_done(self) -> bool:
        return self._emitted >= self.num_rounds

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _draw_session_length(self) -> int:
        """Draw a heavy-tailed session length (in rounds), at least 1."""
        # numpy's pareto returns samples of the Lomax distribution; shifting by
        # one and scaling yields the classic Pareto with the requested mean-ish
        # scale.  The exact parametrisation matters less than the heavy tail.
        raw = (1.0 + self._rng.pareto(self.pareto_shape)) * self.mean_session / 3.0
        return max(1, int(raw))

    # ------------------------------------------------------------------ #
    # Introspection (useful for examples)
    # ------------------------------------------------------------------ #
    @property
    def online_peers(self) -> Tuple[int, ...]:
        """The peers currently online (after the last generated round)."""
        return tuple(sorted(self._online))
