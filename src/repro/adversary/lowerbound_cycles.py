"""The Theorem 4 adversary: k-cycle listing for k >= 6 is hard (Figure 4).

Theorem 4 shows that listing k-cycles for any ``k >= 6`` requires
``Ω(sqrt(n) / log n)`` amortized rounds.  The adversary builds ``t ≈ sqrt(n)``
components; component ``ℓ`` consists of a chain ``u^1_ℓ, ..., u^γ_ℓ``
(``γ = ceil(k/2) - 1``) and ``D ≈ sqrt(n)`` leaf nodes ``v^1_ℓ .. v^D_ℓ``:
``u^1_ℓ`` is connected to an arbitrary 2D/3-subset of the leaves and every
leaf is connected to ``u^2_ℓ``.  In phase II the adversary repeatedly connects
component ``ℓ`` to an earlier component ``m`` by just two edges
(``u^1_ℓ - u^1_m`` and ``u^γ_ℓ - u^γ_m``), waits for the algorithm to
stabilize, and disconnects them again.  Each such visit creates ``Θ(D)``
k-cycles through the leaf pairs the two components share, and a counting
argument shows ``Ω(D)`` bits must cross the two connecting edges, giving the
``sqrt(n)/log n`` bound.

:class:`CycleLowerBoundAdversary` reproduces the schedule; experiment E8 uses
it for structural validation (the number of k-cycles each connection creates)
and :mod:`repro.analysis.information` recomputes the counting bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..simulator.events import RoundChanges, canonical_edge
from .base import WAIT_FOR_STABILITY, ScheduleAdversary

__all__ = ["CycleLowerBoundAdversary", "choose_parameters"]


def choose_parameters(n: int, k: int) -> Tuple[int, int, int]:
    """Pick the construction parameters ``(t, D, gamma)`` for ``n`` nodes.

    The paper sets ``t = D + gamma = sqrt(n)``; for arbitrary ``n`` we take the
    largest ``t`` with ``t * (gamma + D) <= n`` where ``D = t - gamma``
    (requiring ``D >= 3`` so that the 2D/3-subsets are meaningful).
    """
    if k < 6:
        raise ValueError("the Theorem 4 construction applies to k >= 6")
    gamma = math.ceil(k / 2) - 1
    t = int(math.isqrt(n))
    while t > gamma + 3 and t * ((t - gamma) + gamma) > n:
        t -= 1
    D = t - gamma
    if D < 3 or t < 2:
        raise ValueError(
            f"n={n} is too small for the Theorem 4 construction with k={k}; "
            f"need roughly n >= {(gamma + 3 + gamma) * (gamma + 3 + gamma)}"
        )
    return t, D, gamma


@dataclass
class Component:
    """One component ``C_ℓ`` of the Figure 4 construction."""

    index: int
    u_nodes: Tuple[int, ...]
    v_nodes: Tuple[int, ...]
    #: Indices (into ``v_nodes``) of the leaves connected to ``u^1``.
    attached_leaf_indices: Tuple[int, ...] = field(default=())

    @property
    def u1(self) -> int:
        return self.u_nodes[0]

    @property
    def u_gamma(self) -> int:
        return self.u_nodes[-1]


class CycleLowerBoundAdversary(ScheduleAdversary):
    """The two-phase component adversary of Theorem 4 / Figure 4.

    Args:
        n: number of nodes available.
        k: the cycle length (>= 6).
        num_components: override for ``t`` (defaults to the paper's ``~sqrt(n)``).
        seed: RNG seed used for the arbitrary 2D/3 leaf subsets.

    Attributes:
        components: the realized components (node ids and attached leaves).
        connection_events: the (ℓ, m) pairs connected during phase II, in order.
    """

    def __init__(
        self,
        n: int,
        k: int = 6,
        *,
        num_components: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        t, D, gamma = choose_parameters(n, k)
        if num_components is not None:
            t = min(num_components, t)
            if t < 2:
                raise ValueError("need at least two components")
        self.k = k
        self.t = t
        self.D = D
        self.gamma = gamma
        self._rng = np.random.default_rng(seed)
        self.components: List[Component] = []
        self.connection_events: List[Tuple[int, int]] = []
        block = gamma + D
        for ell in range(t):
            base = ell * block
            u_nodes = tuple(base + j for j in range(gamma))
            v_nodes = tuple(base + gamma + j for j in range(D))
            self.components.append(Component(ell + 1, u_nodes, v_nodes))
        super().__init__(self._build_schedule())

    # ------------------------------------------------------------------ #
    # Schedule construction
    # ------------------------------------------------------------------ #
    @property
    def attached_count(self) -> int:
        """How many leaves ``u^1`` of each component is attached to (2D/3)."""
        return max(2, (2 * self.D) // 3)

    def _build_schedule(self):
        # ---------------- Phase I: build the components. ----------------
        for comp in self.components:
            edges = []
            chosen = sorted(
                int(i)
                for i in self._rng.choice(self.D, size=self.attached_count, replace=False)
            )
            comp.attached_leaf_indices = tuple(chosen)
            for idx in chosen:
                edges.append(canonical_edge(comp.u1, comp.v_nodes[idx]))
            if self.gamma >= 2:
                u2 = comp.u_nodes[1]
                for leaf in comp.v_nodes:
                    edges.append(canonical_edge(u2, leaf))
                for a, b in zip(comp.u_nodes[1:], comp.u_nodes[2:]):
                    edges.append(canonical_edge(a, b))
            yield RoundChanges.inserts(edges)
        yield WAIT_FOR_STABILITY

        # ---------------- Phase II: pairwise visits. ----------------
        for ell in range(1, self.t):
            comp_l = self.components[ell]
            for m in range(ell):
                comp_m = self.components[m]
                bridge = [
                    canonical_edge(comp_l.u1, comp_m.u1),
                    canonical_edge(comp_l.u_gamma, comp_m.u_gamma),
                ]
                # With gamma == 1 the two bridge edges coincide; keep one.
                bridge = sorted(set(bridge))
                self.connection_events.append((comp_l.index, comp_m.index))
                yield RoundChanges.inserts(bridge)
                yield WAIT_FOR_STABILITY
                yield RoundChanges.deletes(bridge)
            # Odd-k adjustment (step 2 of phase II): re-route the chain so the
            # two "arms" of the cycle have the right lengths.  Only chain edges
            # that the phase-I construction actually created are deleted, and
            # the shortcut is only inserted if it is not already present (for
            # k = 6 the whole step is a no-op, as in the paper).
            if self.k % 2 == 1:
                a = comp_l.u_nodes[max(0, math.floor(self.k / 2) - 3)]
                b = comp_l.u_nodes[max(0, math.ceil(self.k / 2) - 3)]
                g = comp_l.u_gamma
                chain_edges = {
                    canonical_edge(x, y)
                    for x, y in zip(comp_l.u_nodes[1:], comp_l.u_nodes[2:])
                }
                deletes = []
                if a != b and canonical_edge(a, b) in chain_edges:
                    deletes.append(canonical_edge(a, b))
                if b != g and canonical_edge(b, g) in chain_edges:
                    deletes.append(canonical_edge(b, g))
                shortcut = None if a == g else canonical_edge(a, g)
                inserts = (
                    [shortcut]
                    if shortcut is not None and shortcut not in chain_edges
                    else []
                )
                if deletes or inserts:
                    yield RoundChanges.of(insert=inserts, delete=deletes)
                    yield WAIT_FOR_STABILITY

    # ------------------------------------------------------------------ #
    # Structural helpers used by tests and the E8 bench
    # ------------------------------------------------------------------ #
    def shared_leaf_indices(self, ell: int, m: int) -> Tuple[int, ...]:
        """Leaf indices attached to ``u^1`` in *both* components ``ell`` and ``m``.

        Each such shared index contributes one k-cycle while the two
        components are bridged; the proof's pigeonhole argument lower-bounds
        their number by ``D / 3``.
        """
        comp_l = self.components[ell - 1]
        comp_m = self.components[m - 1]
        return tuple(
            sorted(set(comp_l.attached_leaf_indices) & set(comp_m.attached_leaf_indices))
        )

    def expected_total_changes(self) -> int:
        """Total number of topology changes the schedule performs (O(t^2 + tD))."""
        phase1 = sum(
            self.attached_count + (self.D + (self.gamma - 2) if self.gamma >= 2 else 0)
            for _ in self.components
        )
        pairs = self.t * (self.t - 1) // 2
        bridge_edges = 2 if self.gamma >= 2 else 1
        phase2 = pairs * 2 * bridge_edges
        return phase1 + phase2
