"""Random churn adversaries.

The highly dynamic model allows an arbitrary number of edge insertions and
deletions per round; the simplest realistic workload is uniform random churn:
every round, a number of random absent edges are inserted and a number of
random present edges are deleted.  This is the default workload of the
quickstart example and of the upper-bound benchmarks (E1-E5), where the
interesting measurement is the amortized complexity under sustained,
unstructured change.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..simulator.adversary import Adversary, AdversaryView
from ..simulator.events import RoundChanges, canonical_edge

__all__ = ["RandomChurnAdversary"]


class RandomChurnAdversary(Adversary):
    """Uniform random insertions and deletions every round.

    Args:
        n: number of nodes.
        num_rounds: how many churn rounds to produce before reporting done.
        inserts_per_round: how many absent edges to insert per round (capped by
            the number of absent edges).
        deletes_per_round: how many present edges to delete per round (capped
            by the number of present edges).
        seed: RNG seed (the adversary is deterministic given the seed).
        warmup_edges: edges inserted in the very first round to start from a
            non-trivial graph (``0`` starts from the empty graph as in the
            paper's model).
    """

    def __init__(
        self,
        n: int,
        num_rounds: int,
        *,
        inserts_per_round: int = 2,
        deletes_per_round: int = 1,
        seed: int = 0,
        warmup_edges: int = 0,
    ) -> None:
        if n < 2:
            raise ValueError("need at least two nodes")
        self.n = n
        self.num_rounds = num_rounds
        self.inserts_per_round = inserts_per_round
        self.deletes_per_round = deletes_per_round
        self.warmup_edges = warmup_edges
        self._rng = np.random.default_rng(seed)
        self._emitted = 0

    # ------------------------------------------------------------------ #
    # Adversary interface
    # ------------------------------------------------------------------ #
    def changes_for_round(self, view: AdversaryView) -> Optional[RoundChanges]:
        if self._emitted >= self.num_rounds:
            return None
        self._emitted += 1

        current = set(view.edges)
        inserts = []
        deletes = []

        if self._emitted == 1 and self.warmup_edges > 0:
            inserts.extend(self._sample_absent(current, self.warmup_edges))
            current.update(inserts)

        deletes.extend(self._sample_present(current, self.deletes_per_round))
        current.difference_update(deletes)
        # Edges deleted this round may not be re-inserted in the same batch
        # (the model applies at most one event per edge per round).
        new_edges = self._sample_absent(current | set(deletes), self.inserts_per_round)
        inserts.extend(new_edges)

        return RoundChanges.of(insert=inserts, delete=deletes)

    @property
    def is_done(self) -> bool:
        return self._emitted >= self.num_rounds

    # ------------------------------------------------------------------ #
    # Sampling helpers
    # ------------------------------------------------------------------ #
    def _sample_absent(self, current: set, count: int) -> list[Tuple[int, int]]:
        """Sample up to ``count`` distinct absent edges uniformly at random."""
        picked: list[Tuple[int, int]] = []
        seen = set(current)
        max_edges = self.n * (self.n - 1) // 2
        attempts = 0
        while len(picked) < count and len(seen) < max_edges and attempts < 50 * max(1, count):
            attempts += 1
            u, w = self._rng.integers(0, self.n, size=2)
            if u == w:
                continue
            edge = canonical_edge(int(u), int(w))
            if edge in seen:
                continue
            seen.add(edge)
            picked.append(edge)
        return picked

    def _sample_present(self, current: set, count: int) -> list[Tuple[int, int]]:
        """Sample up to ``count`` distinct present edges uniformly at random."""
        if not current or count <= 0:
            return []
        edges = sorted(current)
        count = min(count, len(edges))
        indices = self._rng.choice(len(edges), size=count, replace=False)
        return [edges[i] for i in sorted(int(i) for i in indices)]
