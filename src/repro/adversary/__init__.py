"""Adversaries (workload generators) for the highly dynamic model.

The adversary chooses the topology changes of every round; this package
contains both realistic churn workloads and the worst-case constructions from
the paper's proofs:

* :class:`ScriptedAdversary` -- explicit, fully predetermined schedules.
* :class:`RandomChurnAdversary` -- uniform random insert/delete churn.
* :class:`HeavyTailedChurnAdversary` -- P2P churn with Pareto session lengths
  (the paper's motivating scenario).
* :class:`FlickerTriangleAdversary` -- the Section 1.3 bad case that defeats
  timestamp-free forwarding.
* :class:`BatchInsertAdversary` -- a whole graph materialised in one round.
* :class:`MembershipLowerBoundAdversary` -- the Theorem 2 construction.
* :class:`CycleLowerBoundAdversary` -- the Theorem 4 / Figure 4 construction.
* :class:`ThreePathLowerBoundAdversary` -- the Remark 1 variant.
* :class:`ScheduleAdversary` / :data:`WAIT_FOR_STABILITY` -- the generator
  building block used by the above.
"""

from .base import WAIT_FOR_STABILITY, ScheduleAdversary
from .batch import BatchInsertAdversary
from .flicker import FlickerTriangleAdversary, flicker_schedule
from .heavy_tailed import HeavyTailedChurnAdversary
from .lowerbound_cycles import CycleLowerBoundAdversary, choose_parameters
from .lowerbound_membership import MembershipLowerBoundAdversary
from .random_churn import RandomChurnAdversary
from .scripted import ScriptedAdversary
from .threepath import ThreePathLowerBoundAdversary

__all__ = [
    "BatchInsertAdversary",
    "choose_parameters",
    "CycleLowerBoundAdversary",
    "FlickerTriangleAdversary",
    "flicker_schedule",
    "HeavyTailedChurnAdversary",
    "MembershipLowerBoundAdversary",
    "RandomChurnAdversary",
    "ScheduleAdversary",
    "ScriptedAdversary",
    "ThreePathLowerBoundAdversary",
    "WAIT_FOR_STABILITY",
]
