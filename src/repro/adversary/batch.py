"""One-shot batch adversaries.

The introduction of the paper points out why *worst-case* round complexity is
hopeless in the highly dynamic setting: an adversary can start from the empty
graph and materialise an arbitrary graph in a single round, after which any
fast membership-listing algorithm would contradict the near-linear CONGEST
lower bound.  :class:`BatchInsertAdversary` is that adversary: it inserts a
whole edge list at once and then stays quiet, so experiments can measure how
long the data structures need to re-converge after a massive burst.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from ..simulator.adversary import Adversary, AdversaryView
from ..simulator.events import RoundChanges, canonical_edge

__all__ = ["BatchInsertAdversary"]


class BatchInsertAdversary(Adversary):
    """Inserts a fixed edge list in round 1, then optionally idles.

    Args:
        edges: the edges to insert in the single burst round.
        quiet_rounds: number of quiet rounds to emit afterwards (gives the
            algorithm time to drain its queues while the adversary still
            controls the run length).
    """

    def __init__(self, edges: Iterable[Tuple[int, int]], quiet_rounds: int = 0) -> None:
        self.edges = [canonical_edge(u, w) for u, w in edges]
        self.quiet_rounds = quiet_rounds
        self._emitted = 0

    @classmethod
    def random_graph(
        cls, n: int, num_edges: int, seed: int = 0, quiet_rounds: int = 0
    ) -> "BatchInsertAdversary":
        """A burst of ``num_edges`` distinct random edges on ``n`` nodes."""
        rng = np.random.default_rng(seed)
        edges = set()
        max_edges = n * (n - 1) // 2
        target = min(num_edges, max_edges)
        while len(edges) < target:
            u, w = rng.integers(0, n, size=2)
            if u != w:
                edges.add(canonical_edge(int(u), int(w)))
        return cls(sorted(edges), quiet_rounds=quiet_rounds)

    def changes_for_round(self, view: AdversaryView) -> Optional[RoundChanges]:
        if self._emitted > self.quiet_rounds:
            return None
        self._emitted += 1
        if self._emitted == 1:
            return RoundChanges.inserts(self.edges)
        return RoundChanges.empty()

    @property
    def is_done(self) -> bool:
        return self._emitted > self.quiet_rounds
