"""The Remark 1 adversary: even 3-path listing is hard.

Remark 1 of the paper observes that the Theorem 4 construction can be adapted
to show a ``Ω(sqrt(n) / log n)`` amortized lower bound already for listing
3-paths (paths with three edges, i.e. four vertices): unify the two chain
endpoints ``u^1_ℓ`` and ``u^γ_ℓ`` of every component into a single hub node
``u_ℓ`` attached to an arbitrary 2D/3-subset of its leaves, and in phase II
bridge pairs of hubs.  While ``u_ℓ - u_m`` exists, every leaf pair
``(v^j_ℓ, v^j_m)`` attached on both sides forms the 3-path
``v^j_ℓ - u_ℓ - u_m - v^j_m``, and the same counting argument applies.

This shows that "ultra-fast" listing stops already at some 4-vertex subgraphs,
nicely complementing Theorem 2 (membership listing of non-cliques is hard) and
the 4-cycle/5-cycle upper bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..simulator.events import RoundChanges, canonical_edge
from .base import WAIT_FOR_STABILITY, ScheduleAdversary

__all__ = ["ThreePathLowerBoundAdversary"]


@dataclass
class HubComponent:
    """One component of the Remark 1 construction: a hub and its leaves."""

    index: int
    hub: int
    leaves: Tuple[int, ...]
    attached_leaf_indices: Tuple[int, ...] = field(default=())


class ThreePathLowerBoundAdversary(ScheduleAdversary):
    """The unified-endpoint variant of the Figure 4 adversary (Remark 1).

    Args:
        n: number of nodes available.
        num_components: override for the number of components ``t``
            (defaults to ``~sqrt(n)``).
        seed: RNG seed used for the arbitrary 2D/3 leaf subsets.
    """

    def __init__(self, n: int, *, num_components: Optional[int] = None, seed: int = 0) -> None:
        t = int(math.isqrt(n))
        D = t - 1
        while t >= 2 and t * (1 + D) > n:
            t -= 1
            D = t - 1
        if num_components is not None:
            t = min(num_components, t)
        if t < 2 or D < 3:
            raise ValueError(f"n={n} is too small for the Remark 1 construction")
        self.t = t
        self.D = D
        self._rng = np.random.default_rng(seed)
        self.components: List[HubComponent] = []
        self.connection_events: List[Tuple[int, int]] = []
        block = 1 + D
        for ell in range(t):
            base = ell * block
            self.components.append(
                HubComponent(ell + 1, hub=base, leaves=tuple(base + 1 + j for j in range(D)))
            )
        super().__init__(self._build_schedule())

    @property
    def attached_count(self) -> int:
        return max(2, (2 * self.D) // 3)

    def _build_schedule(self):
        for comp in self.components:
            chosen = sorted(
                int(i)
                for i in self._rng.choice(self.D, size=self.attached_count, replace=False)
            )
            comp.attached_leaf_indices = tuple(chosen)
            yield RoundChanges.inserts(
                [canonical_edge(comp.hub, comp.leaves[idx]) for idx in chosen]
            )
        yield WAIT_FOR_STABILITY

        for ell in range(1, self.t):
            comp_l = self.components[ell]
            for m in range(ell):
                comp_m = self.components[m]
                bridge = [canonical_edge(comp_l.hub, comp_m.hub)]
                self.connection_events.append((comp_l.index, comp_m.index))
                yield RoundChanges.inserts(bridge)
                yield WAIT_FOR_STABILITY
                yield RoundChanges.deletes(bridge)

    def shared_leaf_indices(self, ell: int, m: int) -> Tuple[int, ...]:
        """Leaf indices attached on both sides; each yields one 3-path while bridged."""
        comp_l = self.components[ell - 1]
        comp_m = self.components[m - 1]
        return tuple(
            sorted(set(comp_l.attached_leaf_indices) & set(comp_m.attached_leaf_indices))
        )
