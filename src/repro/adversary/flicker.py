"""The flickering-triangle adversary of Section 1.3.

The paper motivates the timestamp machinery of the robust 2-hop neighborhood
with the following bad case: a triangle ``{v, u, w}`` that ``v`` knows about
loses its far edge ``{u, w}``, but the deletion announcements of ``u`` and
``w`` are delayed by queue backlog; the adversary then deletes and immediately
re-inserts ``{v, u}`` exactly in the round in which ``u`` finally announces
the deletion, and likewise ``{v, w}`` for ``w``'s announcement.  Without
timestamps ``v`` never hears about the deletion (it is disconnected from the
announcer in exactly the announcement round) yet at least one of its triangle
edges exists in every round, so the naive algorithm keeps believing in the
dead edge forever.

:class:`FlickerTriangleAdversary` builds that schedule explicitly.  The
backlog is created by giving ``u`` and ``w`` a configurable number of filler
edges in round 1, so that their (FIFO, one-item-per-round) queues announce the
far-edge deletion in two *different*, predictable rounds.

Experiment E10 runs this schedule against both the naive forwarding strawman
(which ends up consistent but wrong) and the paper's structures (which end up
consistent and right).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..simulator.events import EdgeInsert, RoundChanges, canonical_edge
from .base import ScheduleAdversary

__all__ = ["FlickerTriangleAdversary", "flicker_schedule"]


def flicker_schedule(
    v: int,
    u: int,
    w: int,
    filler_u: List[int],
    filler_w: List[int],
) -> List[RoundChanges]:
    """Build the Section 1.3 flickering schedule as an explicit round list.

    Args:
        v, u, w: the triangle nodes; ``v`` is the node that should (wrongly,
            for the naive algorithm) keep believing in ``{u, w}``.
        filler_u: extra nodes connected to ``u`` in round 1 to delay its queue.
        filler_w: extra nodes connected to ``w`` in round 1; must create a
            *different* delay than ``filler_u`` so the two announcement rounds
            differ (the construction requires ``i_u != i_w``).

    Returns:
        The per-round batches.  With FIFO queues draining one item per round,
        ``u`` announces the deletion of ``{u, w}`` in round
        ``3 + len(filler_u)`` and ``w`` in round ``3 + len(filler_w)``; the
        schedule deletes ``{v,u}`` (resp. ``{v,w}``) exactly in that round and
        re-inserts it in the next.
    """
    if len(filler_u) == len(filler_w):
        raise ValueError("filler_u and filler_w must have different lengths (i_u != i_w)")
    nodes = {v, u, w, *filler_u, *filler_w}
    if len(nodes) != 3 + len(filler_u) + len(filler_w):
        raise ValueError("triangle nodes and filler nodes must all be distinct")

    # Round 1: build the triangle and the filler edges creating the backlog.
    round1 = RoundChanges.inserts(
        [(v, u), (v, w), (u, w)]
        + [(u, x) for x in filler_u]
        + [(w, x) for x in filler_w]
    )
    # After round 1, u's queue holds {u,v}, {u,w} and its filler edges; it
    # drains one per round.  The deletion of {u,w} enqueued in round 2 is
    # therefore announced by u in round (2 + len(filler_u) + 2) - 1 =
    # 3 + len(filler_u); similarly for w.
    announce_u = 3 + len(filler_u)
    announce_w = 3 + len(filler_w)
    last_round = max(announce_u, announce_w) + 1

    schedule: List[RoundChanges] = [round1]
    for round_index in range(2, last_round + 1):
        inserts: List[Tuple[int, int]] = []
        deletes: List[Tuple[int, int]] = []
        if round_index == 2:
            deletes.append((u, w))
        if round_index == announce_u:
            deletes.append((v, u))
        if round_index == announce_u + 1:
            inserts.append((v, u))
        if round_index == announce_w:
            deletes.append((v, w))
        if round_index == announce_w + 1:
            inserts.append((v, w))
        schedule.append(RoundChanges.of(insert=inserts, delete=deletes))
    return schedule


def _background_inserts(count: int, n: Optional[int], gadget, seed: int):
    """Random static edges among the non-gadget nodes (round-1 insertions)."""
    if n is None:
        raise ValueError("background_edges requires the network size n")
    pool = [x for x in range(n) if x not in gadget]
    max_edges = len(pool) * (len(pool) - 1) // 2
    if count > max_edges:
        raise ValueError(
            f"cannot place {count} background edges among {len(pool)} non-gadget nodes"
        )
    rng = random.Random(seed)
    edges = set()
    while len(edges) < count:
        a, b = rng.sample(pool, 2)
        edges.add(canonical_edge(a, b))
    return [EdgeInsert(*edge) for edge in sorted(edges)]


class FlickerTriangleAdversary(ScheduleAdversary):
    """Replays the Section 1.3 flickering schedule.

    Args:
        v, u, w: the triangle nodes.
        filler_u / filler_w: filler-node ids used to create different queue
            backlogs at ``u`` and ``w`` (see :func:`flicker_schedule`).
        settle_rounds: quiet rounds appended at the end so all queues drain and
            every node reports consistency before the final queries.
        background_edges: static random edges among the non-gadget nodes,
            inserted with round 1 and never touched again.  This embeds the
            tiny flickering gadget in a *large* static graph -- the
            low-activity big-|E| regime that activity-proportional machinery
            (the sparse engine, the incremental oracle) is built for.
            Requires ``n``.
        n: total node count, only needed to draw background edges from.
        background_seed: RNG seed for the background edges.
    """

    def __init__(
        self,
        v: int = 0,
        u: int = 1,
        w: int = 2,
        filler_u: Tuple[int, ...] = (3, 4),
        filler_w: Tuple[int, ...] = (5, 6, 7, 8),
        settle_rounds: int = 12,
        background_edges: int = 0,
        n: Optional[int] = None,
        background_seed: int = 0,
    ) -> None:
        self.v, self.u, self.w = v, u, w
        schedule = flicker_schedule(v, u, w, list(filler_u), list(filler_w))
        if background_edges:
            gadget = {v, u, w, *filler_u, *filler_w}
            schedule[0].extend(
                _background_inserts(background_edges, n, gadget, background_seed)
            )
        schedule.extend(RoundChanges.empty() for _ in range(settle_rounds))
        super().__init__(iter(schedule))
        self.num_scheduled_rounds = len(schedule)

    @property
    def doomed_edge(self) -> Tuple[int, int]:
        """The far edge that is deleted but that the naive algorithm keeps believing in."""
        return (self.u, self.w) if self.u < self.w else (self.w, self.u)
