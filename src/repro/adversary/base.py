"""Shared helpers for concrete adversaries.

The adversary *interface* (:class:`~repro.simulator.adversary.Adversary` and
:class:`~repro.simulator.adversary.AdversaryView`) lives in the simulator
package; this module provides the building blocks the concrete adversaries in
this package are assembled from:

* :class:`ScheduleAdversary` -- drive an adversary from a Python generator
  that yields :class:`~repro.simulator.events.RoundChanges` (or ``None`` for a
  quiet round) and may wait for the algorithm to stabilize between phases,
  which is how the paper's lower-bound constructions are phrased ("wait for
  the algorithm to stabilize").
"""

from __future__ import annotations

from typing import Callable, Generator, Iterator, Optional

from ..simulator.adversary import Adversary, AdversaryView
from ..simulator.events import RoundChanges

__all__ = ["ScheduleAdversary", "WAIT_FOR_STABILITY"]


#: Sentinel a schedule generator can yield to request "emit quiet rounds until
#: every node reports a consistent data structure, then resume the schedule".
WAIT_FOR_STABILITY = object()


class ScheduleAdversary(Adversary):
    """An adversary driven by a generator of round batches.

    The generator yields one of:

    * a :class:`RoundChanges` batch -- applied at the beginning of the next round;
    * ``None`` -- a quiet round;
    * :data:`WAIT_FOR_STABILITY` -- the adversary emits quiet rounds until the
      :class:`AdversaryView` reports that every node was consistent at the end
      of the previous round, then resumes the generator.

    When the generator is exhausted the adversary reports :attr:`is_done`.
    """

    def __init__(self, schedule: Iterator) -> None:
        self._schedule = iter(schedule)
        self._waiting_for_stability = False
        self._done = False

    def changes_for_round(self, view: AdversaryView) -> Optional[RoundChanges]:
        if self._done:
            return None
        if self._waiting_for_stability:
            if not view.all_consistent:
                return RoundChanges.empty()
            self._waiting_for_stability = False
        while True:
            try:
                item = next(self._schedule)
            except StopIteration:
                self._done = True
                return None
            if item is WAIT_FOR_STABILITY:
                if view.all_consistent:
                    # Already stable; ask the generator for the next step
                    # without burning a round.
                    continue
                self._waiting_for_stability = True
                return RoundChanges.empty()
            if item is None:
                return RoundChanges.empty()
            if isinstance(item, RoundChanges):
                return item
            raise TypeError(
                f"schedule yielded {type(item).__name__}; expected RoundChanges, "
                "None or WAIT_FOR_STABILITY"
            )

    @property
    def is_done(self) -> bool:
        return self._done
