"""Delta-log storage of an observed graph history.

The naive oracle stores a full :class:`~repro.oracle.ground_truth.RoundSnapshot`
-- the complete edge set and insertion-time map -- for every observed round,
which is O(rounds x |E|) memory and makes long per-round-checked runs
infeasible.  This module stores the same history as

* a **delta log**: one :class:`RoundDelta` per observed round that actually
  changed the graph (edges inserted with their true insertion times, edges
  deleted), and
* periodic **keyframes**: a full copy of the edge set and time map taken every
  ``keyframe_interval`` deltas, bounding reconstruction cost.

Memory is O(total changes + |E| x rounds / keyframe_interval) instead of
O(rounds x |E|), and reconstructing any past round is a binary search for the
nearest keyframe at or before it plus a replay of at most
``keyframe_interval`` deltas -- replacing the naive oracle's linear scan over
all observed rounds.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..simulator.events import Edge

__all__ = ["RoundDelta", "DeltaLog"]


@dataclass(frozen=True)
class RoundDelta:
    """The graph changes of one observed round.

    Attributes:
        round_index: the round whose end-state the delta leads to.
        inserted: ``(edge, insertion_time)`` pairs; an edge that was deleted
            and re-inserted since the previous observation appears here with
            its *new* time (replay order is deletions first, then insertions).
        deleted: edges removed since the previous observation.
    """

    round_index: int
    inserted: Tuple[Tuple[Edge, int], ...]
    deleted: Tuple[Edge, ...]

    @property
    def is_empty(self) -> bool:
        return not self.inserted and not self.deleted

    @property
    def num_events(self) -> int:
        return len(self.inserted) + len(self.deleted)

    def touched_nodes(self) -> Set[int]:
        """All endpoints of the edges this delta changes."""
        nodes: Set[int] = set()
        for edge, _ in self.inserted:
            nodes.update(edge)
        for edge in self.deleted:
            nodes.update(edge)
        return nodes


class DeltaLog:
    """Append-only history of round deltas with periodic keyframes.

    The log always carries a keyframe for round 0 (the empty graph the model
    starts from), so every non-negative round can be reconstructed.
    """

    def __init__(self, keyframe_interval: int = 64) -> None:
        if keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")
        self.keyframe_interval = keyframe_interval
        self._deltas: List[RoundDelta] = []
        self._delta_rounds: List[int] = []  # parallel to _deltas, for bisect
        # round -> (edges, times); parallel sorted round list for bisect.
        self._keyframes: Dict[int, Tuple[Set[Edge], Dict[Edge, int]]] = {
            0: (set(), {})
        }
        self._keyframe_rounds: List[int] = [0]
        self._deltas_since_keyframe = 0

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(
        self,
        delta: RoundDelta,
        live_edges: Set[Edge],
        live_times: Dict[Edge, int],
    ) -> None:
        """Record one delta; ``live_*`` is the post-delta state for keyframing.

        Rounds must arrive in strictly increasing order.  Every
        ``keyframe_interval``-th delta triggers a keyframe copy of the live
        state, so replay never has to walk more than that many deltas.
        """
        if self._delta_rounds and delta.round_index <= self._delta_rounds[-1]:
            raise ValueError(
                f"delta rounds must be strictly increasing: got {delta.round_index} "
                f"after {self._delta_rounds[-1]}"
            )
        self._deltas.append(delta)
        self._delta_rounds.append(delta.round_index)
        self._deltas_since_keyframe += 1
        if self._deltas_since_keyframe >= self.keyframe_interval:
            self._keyframes[delta.round_index] = (set(live_edges), dict(live_times))
            self._keyframe_rounds.append(delta.round_index)
            self._deltas_since_keyframe = 0

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def num_deltas(self) -> int:
        return len(self._deltas)

    @property
    def num_keyframes(self) -> int:
        return len(self._keyframe_rounds)

    @property
    def last_round(self) -> int:
        """The most recent round with a recorded delta (0 if none)."""
        return self._delta_rounds[-1] if self._delta_rounds else 0

    def reconstruct(self, round_index: int) -> Tuple[Set[Edge], Dict[Edge, int]]:
        """The ``(edges, times)`` state at the end of ``round_index``.

        Rounds without a recorded delta resolve to the most recent recorded
        state at or before them (quiet rounds do not change the graph).

        Raises:
            KeyError: for rounds before the start of history (< 0).
        """
        if round_index < 0:
            raise KeyError(f"no snapshot at or before round {round_index}")
        kf_pos = bisect_right(self._keyframe_rounds, round_index) - 1
        kf_round = self._keyframe_rounds[kf_pos]
        edges, times = self._keyframes[kf_round]
        edges, times = set(edges), dict(times)
        lo = bisect_right(self._delta_rounds, kf_round)
        hi = bisect_right(self._delta_rounds, round_index)
        for delta in self._deltas[lo:hi]:
            for edge in delta.deleted:
                edges.discard(edge)
                times.pop(edge, None)
            for edge, t in delta.inserted:
                edges.add(edge)
                times[edge] = t
        return edges, times

    def memory_entries(self) -> int:
        """Stored edge entries: keyframe edges plus delta events.

        The naive oracle's equivalent figure is the sum of snapshot sizes over
        every observed round; the benchmark compares the two.
        """
        keyframe_entries = sum(len(edges) for edges, _ in self._keyframes.values())
        delta_entries = sum(delta.num_events for delta in self._deltas)
        return keyframe_entries + delta_entries
