"""Centralized ground-truth oracle for checking the distributed algorithms.

* :class:`GroundTruthOracle` -- the incremental, delta-based oracle (default):
  per-round observations stored as a delta log with periodic keyframes
  (:mod:`repro.oracle.deltas`), a live incrementally-maintained adjacency,
  and dirty-region-invalidated query caching, so per-round checks pay per
  *change* instead of per graph.
* :class:`NaiveGroundTruthOracle` -- the original from-scratch reference
  implementation (full snapshot per round, no caching), kept as the
  differential baseline.
* :mod:`repro.oracle.robust_sets` -- pure functions computing ``E^{v,r}_i``,
  ``R^{v,2}_i``, ``T^{v,2}_i`` and ``R^{v,3}_i`` from an edge set and true
  insertion times (plus ``*_adj`` variants over a prebuilt adjacency).
* :mod:`repro.oracle.subgraphs` -- centralized triangle / clique / cycle
  enumeration (networkx-based).
"""

from .deltas import DeltaLog, RoundDelta
from .ground_truth import GroundTruthOracle, NaiveGroundTruthOracle, RoundSnapshot
from .robust_sets import (
    adjacency,
    khop_edges,
    khop_edges_adj,
    robust_three_hop,
    robust_three_hop_adj,
    robust_two_hop,
    robust_two_hop_adj,
    triangle_pattern_set,
    triangle_pattern_set_adj,
)
from .subgraphs import (
    all_triangles,
    build_graph,
    cliques_containing,
    cliques_containing_adj,
    cycles_containing,
    cycles_of_length,
    is_clique,
    is_clique_adj,
    is_cycle_ordering,
    set_is_cycle,
    triangles_containing,
    triangles_containing_adj,
)

__all__ = [
    "DeltaLog",
    "GroundTruthOracle",
    "NaiveGroundTruthOracle",
    "RoundDelta",
    "RoundSnapshot",
    "adjacency",
    "all_triangles",
    "build_graph",
    "cliques_containing",
    "cliques_containing_adj",
    "cycles_containing",
    "cycles_of_length",
    "is_clique",
    "is_clique_adj",
    "is_cycle_ordering",
    "khop_edges",
    "khop_edges_adj",
    "robust_three_hop",
    "robust_three_hop_adj",
    "robust_two_hop",
    "robust_two_hop_adj",
    "set_is_cycle",
    "triangle_pattern_set",
    "triangle_pattern_set_adj",
    "triangles_containing",
    "triangles_containing_adj",
]
