"""Centralized ground-truth oracle for checking the distributed algorithms.

* :class:`GroundTruthOracle` -- per-round snapshots of the true graph plus
  reference implementations of every set and subgraph family the paper's data
  structures are supposed to know.
* :mod:`repro.oracle.robust_sets` -- pure functions computing ``E^{v,r}_i``,
  ``R^{v,2}_i``, ``T^{v,2}_i`` and ``R^{v,3}_i`` from an edge set and true
  insertion times.
* :mod:`repro.oracle.subgraphs` -- centralized triangle / clique / cycle
  enumeration (networkx-based).
"""

from .ground_truth import GroundTruthOracle, RoundSnapshot
from .robust_sets import (
    adjacency,
    khop_edges,
    robust_three_hop,
    robust_two_hop,
    triangle_pattern_set,
)
from .subgraphs import (
    all_triangles,
    build_graph,
    cliques_containing,
    cycles_containing,
    cycles_of_length,
    is_clique,
    is_cycle_ordering,
    set_is_cycle,
    triangles_containing,
)

__all__ = [
    "GroundTruthOracle",
    "RoundSnapshot",
    "adjacency",
    "all_triangles",
    "build_graph",
    "cliques_containing",
    "cycles_containing",
    "cycles_of_length",
    "is_clique",
    "is_cycle_ordering",
    "khop_edges",
    "robust_three_hop",
    "robust_two_hop",
    "set_is_cycle",
    "triangle_pattern_set",
    "triangles_containing",
]
