"""Centralized subgraph enumeration used as ground truth by tests and benches.

All functions operate on a plain edge set (canonical tuples) or a
:class:`networkx.Graph` and enumerate the subgraphs the paper's data
structures are asked about: triangles, k-cliques, and k-cycles, optionally
restricted to those containing a given node.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from ..simulator.events import Edge, canonical_edge

__all__ = [
    "build_graph",
    "triangles_containing",
    "triangles_containing_adj",
    "all_triangles",
    "cliques_containing",
    "cliques_containing_adj",
    "is_clique",
    "is_clique_adj",
    "cycles_of_length",
    "cycles_containing",
    "is_cycle_ordering",
    "set_is_cycle",
]


def build_graph(edges: Iterable[Edge], n: int | None = None) -> nx.Graph:
    """Build a networkx graph from canonical edges (optionally with isolated nodes)."""
    graph = nx.Graph()
    if n is not None:
        graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    return graph


def all_triangles(edges: Iterable[Edge]) -> Set[FrozenSet[int]]:
    """Every triangle of the graph, as frozensets of three nodes."""
    graph = build_graph(edges)
    triangles: Set[FrozenSet[int]] = set()
    for u, w in graph.edges():
        for z in set(graph[u]) & set(graph[w]):
            triangles.add(frozenset({u, w, z}))
    return triangles


def triangles_containing(edges: Iterable[Edge], v: int) -> Set[FrozenSet[int]]:
    """All triangles containing node ``v``."""
    graph = build_graph(edges)
    if v not in graph:
        return set()
    out: Set[FrozenSet[int]] = set()
    neighbors = sorted(graph[v])
    for i, u in enumerate(neighbors):
        for w in neighbors[i + 1 :]:
            if graph.has_edge(u, w):
                out.add(frozenset({v, u, w}))
    return out


def is_clique(edges: Iterable[Edge], nodes: Iterable[int]) -> bool:
    """Whether ``nodes`` form a clique in the graph."""
    edge_set = set(edges)
    node_list = sorted(set(nodes))
    return all(
        canonical_edge(a, b) in edge_set for a, b in combinations(node_list, 2)
    )


def cliques_containing(edges: Iterable[Edge], v: int, k: int) -> Set[FrozenSet[int]]:
    """All k-cliques containing node ``v``."""
    graph = build_graph(edges)
    if v not in graph or graph.degree(v) < k - 1:
        return set()
    out: Set[FrozenSet[int]] = set()
    neighbors = sorted(graph[v])
    for combo in combinations(neighbors, k - 1):
        candidate = set(combo) | {v}
        if is_clique(edges, candidate):
            out.add(frozenset(candidate))
    return out


def cycles_of_length(edges: Iterable[Edge], k: int) -> Set[FrozenSet[int]]:
    """All (chordless or chorded) k-cycles of the graph, as node sets.

    A node set counts as a k-cycle if *some* cyclic ordering of it has all its
    consecutive edges present -- the subgraph-listing convention used by the
    paper (chords are irrelevant to whether the cycle subgraph exists).
    """
    graph = build_graph(edges)
    cycles: Set[FrozenSet[int]] = set()
    nodes = sorted(graph.nodes)

    def extend(path: List[int], start: int) -> None:
        if len(path) == k:
            if graph.has_edge(path[-1], start):
                cycles.add(frozenset(path))
            return
        for nxt in graph[path[-1]]:
            # Enumerate each cycle once: keep the start as the minimum node and
            # never revisit nodes.
            if nxt > start and nxt not in path:
                extend(path + [nxt], start)

    for start in nodes:
        extend([start], start)
    return cycles


def cycles_containing(edges: Iterable[Edge], v: int, k: int) -> Set[FrozenSet[int]]:
    """All k-cycles (as node sets) that contain node ``v``."""
    return {cycle for cycle in cycles_of_length(edges, k) if v in cycle}


def is_cycle_ordering(edges: Iterable[Edge], ordering: Sequence[int]) -> bool:
    """Whether the given cyclic ordering has all its consecutive edges present."""
    edge_set = set(edges)
    k = len(ordering)
    return all(
        canonical_edge(ordering[i], ordering[(i + 1) % k]) in edge_set for i in range(k)
    )


def set_is_cycle(edges: Iterable[Edge], nodes: Iterable[int]) -> bool:
    """Whether some cyclic ordering of ``nodes`` forms a cycle in the graph."""
    node_list = sorted(set(nodes))
    if len(node_list) < 3:
        return False
    graph = build_graph(edges)
    if any(v not in graph for v in node_list):
        return False
    sub_edges = [
        canonical_edge(a, b)
        for a, b in combinations(node_list, 2)
        if graph.has_edge(a, b)
    ]
    return frozenset(node_list) in {
        c for c in cycles_of_length(sub_edges, len(node_list))
    }


# --------------------------------------------------------------------- #
# Adjacency-based variants (activity-proportional query cost)
# --------------------------------------------------------------------- #
def triangles_containing_adj(adj, v: int) -> Set[FrozenSet[int]]:
    """All triangles containing ``v``; equals :func:`triangles_containing`.

    Works off a prebuilt adjacency map, so the cost is quadratic in ``v``'s
    degree instead of linear in |E| (no graph rebuild per call).
    """
    neighbors = sorted(adj.get(v, ()))
    out: Set[FrozenSet[int]] = set()
    for i, u in enumerate(neighbors):
        adj_u = adj.get(u, ())
        for w in neighbors[i + 1 :]:
            if w in adj_u:
                out.add(frozenset({v, u, w}))
    return out


def is_clique_adj(adj, nodes: Iterable[int]) -> bool:
    """Whether ``nodes`` form a clique, from a prebuilt adjacency map."""
    node_list = sorted(set(nodes))
    return all(b in adj.get(a, ()) for a, b in combinations(node_list, 2))


def cliques_containing_adj(adj, v: int, k: int) -> Set[FrozenSet[int]]:
    """All k-cliques containing ``v``; equals :func:`cliques_containing`."""
    neighbors = sorted(adj.get(v, ()))
    if len(neighbors) < k - 1:
        return set()
    out: Set[FrozenSet[int]] = set()
    for combo in combinations(neighbors, k - 1):
        if is_clique_adj(adj, combo):
            out.add(frozenset(combo) | {v})
    return out
