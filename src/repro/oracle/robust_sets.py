"""Reference (centralized) computation of the paper's temporal edge-pattern sets.

These pure functions compute, from a full view of the graph and the true
insertion times, the sets that the distributed data structures are supposed to
maintain:

* ``E^{v,r}_i`` -- all edges of the r-hop neighborhood of ``v``
  (:func:`khop_edges`);
* ``R^{v,2}_i`` -- the robust 2-hop neighborhood of Appendix A
  (:func:`robust_two_hop`);
* ``T^{v,2}_i`` -- the Figure 2 temporal patterns (a) + (b) maintained by the
  triangle membership structure (:func:`triangle_pattern_set`);
* ``R^{v,3}_i`` -- the robust 3-hop neighborhood of Figure 3
  (:func:`robust_three_hop`).

They are the ground truth against which the test-suite and the coverage
benchmark (E11) compare the distributed implementations.  All functions take
the edge set and the insertion-time map explicitly so they can be evaluated
for any past round.

The ``*_adj`` variants compute the same sets from a prebuilt adjacency map
instead of rebuilding one from the full edge set per call, so their cost is
proportional to the queried node's neighborhood rather than to |E|.  They are
what the incremental :class:`~repro.oracle.ground_truth.GroundTruthOracle`
serves cache misses from; the edge-set functions above them stay as the
deliberately simple from-scratch reference the incremental oracle is
differentially tested against.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Set

from ..simulator.events import Edge, canonical_edge

__all__ = [
    "adjacency",
    "khop_edges",
    "khop_edges_adj",
    "robust_two_hop",
    "robust_two_hop_adj",
    "triangle_pattern_set",
    "triangle_pattern_set_adj",
    "robust_three_hop",
    "robust_three_hop_adj",
]


def adjacency(edges: Iterable[Edge]) -> Dict[int, Set[int]]:
    """Adjacency map of an edge set."""
    adj: Dict[int, Set[int]] = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)
    return adj


def khop_edges(edges: Iterable[Edge], v: int, radius: int) -> FrozenSet[Edge]:
    """``E^{v,r}_i``: the edges of the r-hop neighborhood of ``v``.

    Following the paper's operative definition (Section 2 spells it out for
    ``r = 2``: "the set of edges that touch the node v or any of its
    neighbors"), an edge belongs to the r-hop neighborhood iff at least one of
    its endpoints is within distance ``r - 1`` of ``v`` -- equivalently, the
    edge lies on some path of at most ``r`` edges starting at ``v``.
    """
    edge_set = set(edges)
    adj = adjacency(edge_set)
    dist: Dict[int, int] = {v: 0}
    frontier = [v]
    for d in range(1, radius):
        nxt = []
        for node in frontier:
            for nb in adj.get(node, ()):  # BFS layer by layer
                if nb not in dist:
                    dist[nb] = d
                    nxt.append(nb)
        frontier = nxt
    return frozenset(
        e
        for e in edge_set
        if (e[0] in dist and dist[e[0]] <= radius - 1)
        or (e[1] in dist and dist[e[1]] <= radius - 1)
    )


def robust_two_hop(
    edges: Iterable[Edge], times: Mapping[Edge, int], v: int
) -> FrozenSet[Edge]:
    """``R^{v,2}_i``: the (v, i)-robust edges of Appendix A.

    An edge ``e = {u, w}`` is (v, i)-robust if ``v`` is one of its endpoints,
    or ``t_e >= t_{v,u}`` with ``{v,u}`` present, or ``t_e >= t_{v,w}`` with
    ``{v,w}`` present.
    """
    edge_set = set(edges)
    adj = adjacency(edge_set)
    neighbors = adj.get(v, set())
    robust: Set[Edge] = {canonical_edge(v, u) for u in neighbors}
    for e in edge_set:
        if v in e:
            continue
        u, w = e
        t_e = times[e]
        if u in neighbors and t_e >= times[canonical_edge(v, u)]:
            robust.add(e)
        elif w in neighbors and t_e >= times[canonical_edge(v, w)]:
            robust.add(e)
    return frozenset(robust)


def triangle_pattern_set(
    edges: Iterable[Edge], times: Mapping[Edge, int], v: int
) -> FrozenSet[Edge]:
    """``T^{v,2}_i``: the Figure 2 temporal patterns (a) and (b).

    Pattern (a) is the robust 2-hop neighborhood; pattern (b) additionally
    includes every edge ``{u, w}`` between two neighbors of ``v`` that is
    *older* than both ``{v,u}`` and ``{v,w}``.  Together these sets contain
    every triangle through ``v``.
    """
    edge_set = set(edges)
    adj = adjacency(edge_set)
    neighbors = adj.get(v, set())
    out: Set[Edge] = set(robust_two_hop(edge_set, times, v))
    for e in edge_set:
        if v in e:
            continue
        u, w = e
        if u in neighbors and w in neighbors:
            t_e = times[e]
            if t_e < times[canonical_edge(v, u)] and t_e < times[canonical_edge(v, w)]:
                out.add(e)
    return frozenset(out)


def robust_three_hop(
    edges: Iterable[Edge], times: Mapping[Edge, int], v: int
) -> FrozenSet[Edge]:
    """``R^{v,3}_i``: the robust 3-hop neighborhood of Figure 3.

    * incident edges of ``v``;
    * pattern (a): ``v - u - w`` with ``t_{u,w} >= t_{v,u}``;
    * pattern (b): ``v - u - w - x`` (a simple 3-path) with
      ``t_{w,x} >= t_{u,w}`` and ``t_{w,x} >= t_{v,u}``.
    """
    edge_set = set(edges)
    adj = adjacency(edge_set)
    neighbors = adj.get(v, set())
    robust: Set[Edge] = {canonical_edge(v, u) for u in neighbors}

    # Pattern (a): same as the non-incident part of the robust 2-hop set.
    robust |= set(robust_two_hop(edge_set, times, v)) - {
        canonical_edge(v, u) for u in neighbors
    }

    # Pattern (b): 3-paths v - u - w - x whose farthest edge is newest.
    for u in neighbors:
        t_vu = times[canonical_edge(v, u)]
        for w in adj.get(u, ()):  # second hop
            if w == v or w == u:
                continue
            e_uw = canonical_edge(u, w)
            t_uw = times[e_uw]
            for x in adj.get(w, ()):  # third hop
                if x in (v, u, w):
                    continue
                e_wx = canonical_edge(w, x)
                t_wx = times[e_wx]
                if t_wx >= t_uw and t_wx >= t_vu:
                    robust.add(e_wx)
    return frozenset(robust)


# --------------------------------------------------------------------- #
# Adjacency-based variants (activity-proportional query cost)
# --------------------------------------------------------------------- #
def khop_edges_adj(adj: Mapping[int, Set[int]], v: int, radius: int) -> FrozenSet[Edge]:
    """``E^{v,r}_i`` from a prebuilt adjacency; equals :func:`khop_edges`.

    An edge belongs to the r-hop neighborhood iff one of its endpoints is
    within distance ``r - 1`` of ``v``, so collecting the incident edges of
    every node of the BFS ball of depth ``r - 1`` yields exactly the
    reference set while only touching the ball.
    """
    if radius < 1:
        return frozenset()  # matches the reference: no node is within r - 1 < 0
    dist: Dict[int, int] = {v: 0}
    frontier = [v]
    for d in range(1, radius):
        nxt = []
        for node in frontier:
            for nb in adj.get(node, ()):
                if nb not in dist:
                    dist[nb] = d
                    nxt.append(nb)
        frontier = nxt
    return frozenset(
        canonical_edge(u, nb) for u in dist for nb in adj.get(u, ())
    )


def robust_two_hop_adj(
    adj: Mapping[int, Set[int]], times: Mapping[Edge, int], v: int
) -> FrozenSet[Edge]:
    """``R^{v,2}_i`` from a prebuilt adjacency; equals :func:`robust_two_hop`."""
    neighbors = adj.get(v, set())
    robust: Set[Edge] = {canonical_edge(v, u) for u in neighbors}
    for u in neighbors:
        t_vu = times[canonical_edge(v, u)]
        for w in adj.get(u, ()):
            if w == v:
                continue
            e = canonical_edge(u, w)
            if times[e] >= t_vu:
                robust.add(e)
    return frozenset(robust)


def triangle_pattern_set_adj(
    adj: Mapping[int, Set[int]], times: Mapping[Edge, int], v: int
) -> FrozenSet[Edge]:
    """``T^{v,2}_i`` from a prebuilt adjacency; equals :func:`triangle_pattern_set`."""
    neighbors = adj.get(v, set())
    out: Set[Edge] = set(robust_two_hop_adj(adj, times, v))
    for u in neighbors:
        t_vu = times[canonical_edge(v, u)]
        for w in adj.get(u, ()):
            if w == v or w not in neighbors:
                continue
            e = canonical_edge(u, w)
            t_e = times[e]
            if t_e < t_vu and t_e < times[canonical_edge(v, w)]:
                out.add(e)
    return frozenset(out)


def robust_three_hop_adj(
    adj: Mapping[int, Set[int]], times: Mapping[Edge, int], v: int
) -> FrozenSet[Edge]:
    """``R^{v,3}_i`` from a prebuilt adjacency; equals :func:`robust_three_hop`."""
    neighbors = adj.get(v, set())
    robust: Set[Edge] = {canonical_edge(v, u) for u in neighbors}

    # Pattern (a): v - u - w with t_{u,w} >= t_{v,u}.
    robust |= set(robust_two_hop_adj(adj, times, v))

    # Pattern (b): 3-paths v - u - w - x whose farthest edge is newest.
    for u in neighbors:
        t_vu = times[canonical_edge(v, u)]
        for w in adj.get(u, ()):
            if w == v or w == u:
                continue
            t_uw = times[canonical_edge(u, w)]
            for x in adj.get(w, ()):
                if x in (v, u, w):
                    continue
                e_wx = canonical_edge(w, x)
                t_wx = times[e_wx]
                if t_wx >= t_uw and t_wx >= t_vu:
                    robust.add(e_wx)
    return frozenset(robust)
