"""A centralized observer of the evolving graph, used as ground truth.

Two oracle implementations share one query surface:

* :class:`GroundTruthOracle` -- the **incremental** oracle (the default
  everywhere).  It watches a
  :class:`~repro.simulator.network.DynamicNetwork` round by round and pays
  per *change*, mirroring the algorithms it checks: observations are stored
  as a delta log with periodic keyframes
  (:class:`~repro.oracle.deltas.DeltaLog`, memory O(changes) instead of
  O(rounds x |E|)); a live adjacency is maintained under edge updates; and
  query answers for the current round are cached, with an edge change only
  invalidating the cached answers of nodes within r hops of its endpoints
  (the *dirty region*).  Quiet rounds -- no changes since the last
  observation -- cost O(1) to observe.

* :class:`NaiveGroundTruthOracle` -- the original deliberately centralized
  and slow implementation: a full edge-set + insertion-time copy per observed
  round and a from-scratch reference computation per query.  It is kept as
  the reference the incremental oracle is differentially tested (and
  benchmarked, ``benchmarks/bench_oracle_scaling.py``) against.

Both answer, for any observed round:

* which edges / subgraphs existed (``G_i`` and ``G_{i-1}`` checks),
* the full r-hop neighborhood ``E^{v,r}_i`` of any node,
* the robust sets ``R^{v,2}_i``, ``T^{v,2}_i``, ``R^{v,3}_i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set

from ..obs.telemetry import SIZE_BUCKETS, TELEMETRY
from ..simulator.events import Edge
from ..simulator.network import DynamicNetwork
from . import robust_sets, subgraphs
from .deltas import DeltaLog, RoundDelta

__all__ = ["RoundSnapshot", "GroundTruthOracle", "NaiveGroundTruthOracle"]

#: Maximum tracked dirty-region radius.  Covers every shipped query (the
#: deepest is ``R^{v,3}``, which depends on edges within 2 hops, and
#: ``E^{v,r}`` up to radius 4); rarer deeper queries fall back to a global
#: invalidation stamp.
R_MAX = 3


@dataclass(frozen=True)
class RoundSnapshot:
    """The graph as it was at the end of one observed round."""

    round_index: int
    edges: FrozenSet[Edge]
    insertion_times: Mapping[Edge, int]


class GroundTruthOracle:
    """Incremental, delta-based ground-truth oracle.

    Observation cost is proportional to the number of changes since the last
    observation (O(1) when nothing changed); queries for the current round
    are served from a cache invalidated only inside the dirty region of the
    changes; queries for past rounds replay the delta log from the nearest
    keyframe.

    Args:
        n: number of nodes of the observed network.
        keyframe_interval: a full state copy is stored every this many
            non-empty deltas, bounding both replay cost and memory
            (O(changes + |E| x deltas / keyframe_interval)).
    """

    def __init__(self, n: int, keyframe_interval: int = 64) -> None:
        self.n = n
        self._log = DeltaLog(keyframe_interval)
        self._live_edges: Set[Edge] = set()
        self._live_times: Dict[Edge, int] = {}
        self._live_adj: Dict[int, Set[int]] = {}
        self._latest_round = 0
        #: ``network.total_changes`` at the last observation (continuity check).
        self._observed_changes = 0
        #: Bumped once per non-empty delta; cache entries remember the version
        #: they were computed at.
        self._version = 0
        self._global_dirty_version = 0
        #: node -> last version with a change within distance d, per d <= R_MAX.
        self._dirty: Dict[int, List[int]] = {}
        #: (kind, node, ...) -> (answer, version computed at).
        self._cache: Dict[tuple, tuple] = {}
        #: node -> distance to the most recent non-empty delta's endpoints.
        self._last_ball: Dict[int, int] = {}
        self._reconstructed: Optional[RoundSnapshot] = None

    @classmethod
    def from_network(cls, network: DynamicNetwork, **kwargs) -> "GroundTruthOracle":
        """An oracle primed with the network's current state (one observation)."""
        oracle = cls(network.n, **kwargs)
        oracle.observe(network)
        return oracle

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def observe(self, network: DynamicNetwork) -> RoundDelta:
        """Record the network's current state; returns the applied delta.

        The cost is proportional to the changes since the previous
        observation: when the network reports no new changes the call is
        O(1), and when exactly one round's batch happened in between (the
        per-round validator case) the delta is read straight off
        :attr:`~repro.simulator.network.DynamicNetwork.last_changes`.  Only
        when observations skipped changed rounds does the oracle fall back to
        a full O(|E|) diff against its live state.
        """
        round_index = network.round_index
        if round_index < self._latest_round:
            raise ValueError(
                f"cannot observe round {round_index} after round {self._latest_round}"
            )
        delta = self._delta_from(network, round_index)
        if not delta.is_empty and round_index == self._log.last_round:
            raise ValueError(f"round {round_index} was already observed with changes")
        self._apply_delta(delta)
        self._observed_changes = network.total_changes
        self._latest_round = round_index
        return delta

    def _delta_from(self, network: DynamicNetwork, round_index: int) -> RoundDelta:
        changes_since = network.total_changes - self._observed_changes
        if changes_since == 0:
            return RoundDelta(round_index, (), ())
        last = network.last_changes
        if (
            last is not None
            and network.last_changes_round == round_index
            and changes_since == len(last)
        ):
            return RoundDelta(
                round_index,
                tuple((edge, round_index) for edge in last.insertions),
                tuple(last.deletions),
            )
        # Observations skipped at least one changed round: diff the full state.
        new_edges = network.edges
        new_times = network.insertion_times()
        inserted = tuple(
            (edge, t)
            for edge, t in sorted(new_times.items())
            if self._live_times.get(edge) != t
        )
        deleted = tuple(sorted(e for e in self._live_edges if e not in new_edges))
        return RoundDelta(round_index, inserted, deleted)

    def _apply_delta(self, delta: RoundDelta) -> None:
        if delta.is_empty:
            self._last_ball = {}
            return
        sources = delta.touched_nodes()
        ball = self._ball_distances(sources)
        adj = self._live_adj
        for edge in delta.deleted:
            a, b = edge
            self._live_edges.discard(edge)
            self._live_times.pop(edge, None)
            adj.get(a, set()).discard(b)
            adj.get(b, set()).discard(a)
        for edge, t in delta.inserted:
            a, b = edge
            self._live_edges.add(edge)
            self._live_times[edge] = t
            adj.setdefault(a, set()).add(b)
            adj.setdefault(b, set()).add(a)
        # The dirty region is the union of the pre- and post-change balls: a
        # cached answer is affected whether the change created or destroyed
        # reachability.
        for node, dist in self._ball_distances(sources).items():
            prev = ball.get(node)
            if prev is None or dist < prev:
                ball[node] = dist
        self._version += 1
        self._global_dirty_version = self._version
        for node, dist in ball.items():
            stamps = self._dirty.get(node)
            if stamps is None:
                stamps = self._dirty[node] = [0] * (R_MAX + 1)
            for depth in range(dist, R_MAX + 1):
                stamps[depth] = self._version
        self._last_ball = ball
        self._reconstructed = None
        self._log.append(delta, self._live_edges, self._live_times)
        if TELEMETRY.enabled:
            TELEMETRY.observe("oracle.dirty_ball", len(ball), SIZE_BUCKETS)

    def _ball_distances(self, sources: Iterable[int]) -> Dict[int, int]:
        """Multi-source BFS distances up to ``R_MAX`` over the live adjacency."""
        dist = {node: 0 for node in sources}
        frontier = list(dist)
        adj = self._live_adj
        for d in range(1, R_MAX + 1):
            nxt = []
            for node in frontier:
                for nb in adj.get(node, ()):
                    if nb not in dist:
                        dist[nb] = d
                        nxt.append(nb)
            frontier = nxt
        return dist

    def validator(self):
        """A :class:`~repro.simulator.runner.RoundValidator` that records snapshots."""

        def _record(round_index: int, network: DynamicNetwork, nodes) -> None:
            self.observe(network)

        return _record

    def last_changed_ball(self, depth: int) -> Set[int]:
        """Nodes within ``depth`` hops of the most recent observed changes.

        Empty after a quiet observation.  Per-round checks use this (together
        with the engine's active set) to only re-examine nodes whose ground
        truth could have changed.
        """
        return {node for node, d in self._last_ball.items() if d <= depth}

    # ------------------------------------------------------------------ #
    # Snapshot access
    # ------------------------------------------------------------------ #
    @property
    def latest_round(self) -> int:
        return self._latest_round

    def snapshot(self, round_index: Optional[int] = None) -> RoundSnapshot:
        """The snapshot of ``round_index`` (default: the latest observed round).

        If the exact round was not observed (e.g. a quiet round that nobody
        recorded), the most recent observed state at or before it is returned
        -- quiet rounds do not change the graph.  Past rounds are
        reconstructed by replaying the delta log from the nearest keyframe
        (the most recent reconstruction is cached for repeated queries).
        """
        # Negative rounds fall into the reconstruct branch (latest_round is
        # never negative), which raises the KeyError.
        if round_index is None or round_index >= self._latest_round:
            return RoundSnapshot(
                self._latest_round, frozenset(self._live_edges), dict(self._live_times)
            )
        cached = self._reconstructed
        if cached is not None and cached.round_index == round_index:
            return cached
        with TELEMETRY.span("oracle.reconstruct"):
            edges, times = self._log.reconstruct(round_index)
        snap = RoundSnapshot(round_index, frozenset(edges), times)
        self._reconstructed = snap
        return snap

    def edges_at(self, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        return self.snapshot(round_index).edges

    def times_at(self, round_index: Optional[int] = None) -> Mapping[Edge, int]:
        return self.snapshot(round_index).insertion_times

    def memory_profile(self) -> Dict[str, int]:
        """Stored-entry accounting (compared against the naive oracle's)."""
        return {
            "snapshot_edge_entries": self._log.memory_entries(),
            "num_keyframes": self._log.num_keyframes,
            "num_deltas": self._log.num_deltas,
            "live_edges": len(self._live_edges),
            "cache_entries": len(self._cache),
        }

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #
    def _is_live(self, round_index: Optional[int]) -> bool:
        return round_index is None or round_index >= self._latest_round

    def _fresh(self, node: int, depth: int, version: int) -> bool:
        if depth > R_MAX:
            return self._global_dirty_version <= version
        stamps = self._dirty.get(node)
        return stamps is None or stamps[depth] <= version

    def _cached(self, key: tuple, node: int, depth: int, compute):
        entry = self._cache.get(key)
        if entry is not None and self._fresh(node, depth, entry[1]):
            if TELEMETRY.enabled:
                TELEMETRY.count("oracle.cache_hits")
            return entry[0]
        if TELEMETRY.enabled:
            TELEMETRY.count("oracle.cache_misses")
        value = compute()
        self._cache[key] = (value, self._version)
        return value

    # ------------------------------------------------------------------ #
    # Reference sets
    # ------------------------------------------------------------------ #
    def khop_edges(self, v: int, radius: int, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        if self._is_live(round_index):
            return self._cached(
                ("khop", v, radius),
                v,
                max(0, radius - 1),
                lambda: robust_sets.khop_edges_adj(self._live_adj, v, radius),
            )
        snap = self.snapshot(round_index)
        return robust_sets.khop_edges(snap.edges, v, radius)

    def robust_two_hop(self, v: int, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        if self._is_live(round_index):
            return self._cached(
                ("r2", v),
                v,
                1,
                lambda: robust_sets.robust_two_hop_adj(self._live_adj, self._live_times, v),
            )
        snap = self.snapshot(round_index)
        return robust_sets.robust_two_hop(snap.edges, snap.insertion_times, v)

    def triangle_pattern_set(self, v: int, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        if self._is_live(round_index):
            return self._cached(
                ("t2", v),
                v,
                1,
                lambda: robust_sets.triangle_pattern_set_adj(
                    self._live_adj, self._live_times, v
                ),
            )
        snap = self.snapshot(round_index)
        return robust_sets.triangle_pattern_set(snap.edges, snap.insertion_times, v)

    def robust_three_hop(self, v: int, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        if self._is_live(round_index):
            return self._cached(
                ("r3", v),
                v,
                2,
                lambda: robust_sets.robust_three_hop_adj(
                    self._live_adj, self._live_times, v
                ),
            )
        snap = self.snapshot(round_index)
        return robust_sets.robust_three_hop(snap.edges, snap.insertion_times, v)

    # ------------------------------------------------------------------ #
    # Reference subgraphs
    # ------------------------------------------------------------------ #
    def triangles_containing(self, v: int, round_index: Optional[int] = None) -> Set[FrozenSet[int]]:
        if self._is_live(round_index):
            return self._cached(
                ("tri", v),
                v,
                1,
                lambda: subgraphs.triangles_containing_adj(self._live_adj, v),
            )
        return subgraphs.triangles_containing(self.edges_at(round_index), v)

    def cliques_containing(self, v: int, k: int, round_index: Optional[int] = None) -> Set[FrozenSet[int]]:
        if self._is_live(round_index):
            return self._cached(
                ("clique", v, k),
                v,
                1,
                lambda: subgraphs.cliques_containing_adj(self._live_adj, v, k),
            )
        return subgraphs.cliques_containing(self.edges_at(round_index), v, k)

    def cycles_of_length(self, k: int, round_index: Optional[int] = None) -> Set[FrozenSet[int]]:
        if self._is_live(round_index):
            # A global query: any change anywhere invalidates it.
            return self._cached(
                ("cycles", k),
                -1,
                R_MAX + 1,
                lambda: subgraphs.cycles_of_length(self._live_edges, k),
            )
        return subgraphs.cycles_of_length(self.edges_at(round_index), k)

    def is_triangle(self, nodes: Iterable[int], round_index: Optional[int] = None) -> bool:
        node_set = set(nodes)
        if len(node_set) != 3:
            return False
        if self._is_live(round_index):
            return subgraphs.is_clique_adj(self._live_adj, node_set)
        return subgraphs.is_clique(self.edges_at(round_index), node_set)

    def is_clique(self, nodes: Iterable[int], round_index: Optional[int] = None) -> bool:
        if self._is_live(round_index):
            return subgraphs.is_clique_adj(self._live_adj, nodes)
        return subgraphs.is_clique(self.edges_at(round_index), nodes)

    def set_is_cycle(self, nodes: Iterable[int], round_index: Optional[int] = None) -> bool:
        edges = self._live_edges if self._is_live(round_index) else self.edges_at(round_index)
        return subgraphs.set_is_cycle(edges, nodes)

    def is_cycle_ordering(self, ordering, round_index: Optional[int] = None) -> bool:
        edges = self._live_edges if self._is_live(round_index) else self.edges_at(round_index)
        return subgraphs.is_cycle_ordering(edges, ordering)


class NaiveGroundTruthOracle:
    """The from-scratch reference oracle: full snapshots, no caching.

    Records a complete :class:`RoundSnapshot` per observed round (O(rounds x
    |E|) memory) and recomputes every query from scratch.  Deliberately
    simple; the incremental :class:`GroundTruthOracle` is differentially
    tested against it, and ``benchmarks/bench_oracle_scaling.py`` measures
    the gap between the two.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self._snapshots: Dict[int, RoundSnapshot] = {}
        # Round 0: the empty graph the model starts from.
        self._snapshots[0] = RoundSnapshot(0, frozenset(), {})
        self._latest_round = 0

    @classmethod
    def from_network(cls, network: DynamicNetwork) -> "NaiveGroundTruthOracle":
        oracle = cls(network.n)
        oracle.observe(network)
        return oracle

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def observe(self, network: DynamicNetwork) -> RoundSnapshot:
        """Record the network's current state as the snapshot of its current round."""
        snapshot = RoundSnapshot(
            round_index=network.round_index,
            edges=network.edges,
            insertion_times=dict(network.insertion_times()),
        )
        self._snapshots[network.round_index] = snapshot
        self._latest_round = max(self._latest_round, network.round_index)
        return snapshot

    def validator(self):
        """A :class:`~repro.simulator.runner.RoundValidator` that records snapshots."""

        def _record(round_index: int, network: DynamicNetwork, nodes) -> None:
            self.observe(network)

        return _record

    # ------------------------------------------------------------------ #
    # Snapshot access
    # ------------------------------------------------------------------ #
    @property
    def latest_round(self) -> int:
        return self._latest_round

    def snapshot(self, round_index: Optional[int] = None) -> RoundSnapshot:
        """The snapshot of ``round_index`` (default: the latest observed round).

        If the exact round was not observed, the most recent observed
        snapshot at or before it is returned (a linear scan -- this is the
        naive implementation).
        """
        if round_index is None:
            round_index = self._latest_round
        if round_index in self._snapshots:
            return self._snapshots[round_index]
        known = [r for r in self._snapshots if r <= round_index]
        if not known:
            raise KeyError(f"no snapshot at or before round {round_index}")
        return self._snapshots[max(known)]

    def edges_at(self, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        return self.snapshot(round_index).edges

    def times_at(self, round_index: Optional[int] = None) -> Mapping[Edge, int]:
        return self.snapshot(round_index).insertion_times

    def memory_profile(self) -> Dict[str, int]:
        """Stored-entry accounting (mirrors the incremental oracle's)."""
        return {
            "snapshot_edge_entries": sum(
                len(snap.edges) for snap in self._snapshots.values()
            ),
            "num_snapshots": len(self._snapshots),
        }

    # ------------------------------------------------------------------ #
    # Reference sets
    # ------------------------------------------------------------------ #
    def khop_edges(self, v: int, radius: int, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        snap = self.snapshot(round_index)
        return robust_sets.khop_edges(snap.edges, v, radius)

    def robust_two_hop(self, v: int, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        snap = self.snapshot(round_index)
        return robust_sets.robust_two_hop(snap.edges, snap.insertion_times, v)

    def triangle_pattern_set(self, v: int, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        snap = self.snapshot(round_index)
        return robust_sets.triangle_pattern_set(snap.edges, snap.insertion_times, v)

    def robust_three_hop(self, v: int, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        snap = self.snapshot(round_index)
        return robust_sets.robust_three_hop(snap.edges, snap.insertion_times, v)

    # ------------------------------------------------------------------ #
    # Reference subgraphs
    # ------------------------------------------------------------------ #
    def triangles_containing(self, v: int, round_index: Optional[int] = None) -> Set[FrozenSet[int]]:
        return subgraphs.triangles_containing(self.edges_at(round_index), v)

    def cliques_containing(self, v: int, k: int, round_index: Optional[int] = None) -> Set[FrozenSet[int]]:
        return subgraphs.cliques_containing(self.edges_at(round_index), v, k)

    def cycles_of_length(self, k: int, round_index: Optional[int] = None) -> Set[FrozenSet[int]]:
        return subgraphs.cycles_of_length(self.edges_at(round_index), k)

    def is_triangle(self, nodes: Iterable[int], round_index: Optional[int] = None) -> bool:
        node_set = set(nodes)
        return len(node_set) == 3 and subgraphs.is_clique(self.edges_at(round_index), node_set)

    def is_clique(self, nodes: Iterable[int], round_index: Optional[int] = None) -> bool:
        return subgraphs.is_clique(self.edges_at(round_index), nodes)

    def set_is_cycle(self, nodes: Iterable[int], round_index: Optional[int] = None) -> bool:
        return subgraphs.set_is_cycle(self.edges_at(round_index), nodes)

    def is_cycle_ordering(self, ordering, round_index: Optional[int] = None) -> bool:
        return subgraphs.is_cycle_ordering(self.edges_at(round_index), ordering)
