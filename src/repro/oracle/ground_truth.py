"""A centralized observer of the evolving graph, used as ground truth.

:class:`GroundTruthOracle` watches a :class:`~repro.simulator.network.DynamicNetwork`
round by round (via :meth:`observe` or as a
:class:`~repro.simulator.runner.RoundValidator`) and records, for every
observed round, the edge set and the true insertion times of those edges.
From that history it can answer, for any observed round:

* which edges / subgraphs existed (``G_i`` and ``G_{i-1}`` checks),
* the full r-hop neighborhood ``E^{v,r}_i`` of any node,
* the robust sets ``R^{v,2}_i``, ``T^{v,2}_i``, ``R^{v,3}_i``.

It is deliberately *centralized and slow* -- it exists to check the
distributed algorithms, not to compete with them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set

from ..simulator.events import Edge
from ..simulator.network import DynamicNetwork
from . import robust_sets, subgraphs

__all__ = ["RoundSnapshot", "GroundTruthOracle"]


@dataclass(frozen=True)
class RoundSnapshot:
    """The graph as it was at the end of one observed round."""

    round_index: int
    edges: FrozenSet[Edge]
    insertion_times: Mapping[Edge, int]


class GroundTruthOracle:
    """Records per-round snapshots of the true graph and answers reference queries."""

    def __init__(self, n: int) -> None:
        self.n = n
        self._snapshots: Dict[int, RoundSnapshot] = {}
        # Round 0: the empty graph the model starts from.
        self._snapshots[0] = RoundSnapshot(0, frozenset(), {})
        self._latest_round = 0

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def observe(self, network: DynamicNetwork) -> RoundSnapshot:
        """Record the network's current state as the snapshot of its current round."""
        snapshot = RoundSnapshot(
            round_index=network.round_index,
            edges=network.edges,
            insertion_times=dict(network.insertion_times()),
        )
        self._snapshots[network.round_index] = snapshot
        self._latest_round = max(self._latest_round, network.round_index)
        return snapshot

    def validator(self):
        """A :class:`~repro.simulator.runner.RoundValidator` that records snapshots."""

        def _record(round_index: int, network: DynamicNetwork, nodes) -> None:
            self.observe(network)

        return _record

    # ------------------------------------------------------------------ #
    # Snapshot access
    # ------------------------------------------------------------------ #
    @property
    def latest_round(self) -> int:
        return self._latest_round

    def snapshot(self, round_index: Optional[int] = None) -> RoundSnapshot:
        """The snapshot of ``round_index`` (default: the latest observed round).

        If the exact round was not observed (e.g. a quiet round that nobody
        recorded), the most recent observed snapshot at or before it is
        returned -- quiet rounds do not change the graph.
        """
        if round_index is None:
            round_index = self._latest_round
        if round_index in self._snapshots:
            return self._snapshots[round_index]
        known = [r for r in self._snapshots if r <= round_index]
        if not known:
            raise KeyError(f"no snapshot at or before round {round_index}")
        return self._snapshots[max(known)]

    def edges_at(self, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        return self.snapshot(round_index).edges

    def times_at(self, round_index: Optional[int] = None) -> Mapping[Edge, int]:
        return self.snapshot(round_index).insertion_times

    # ------------------------------------------------------------------ #
    # Reference sets
    # ------------------------------------------------------------------ #
    def khop_edges(self, v: int, radius: int, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        snap = self.snapshot(round_index)
        return robust_sets.khop_edges(snap.edges, v, radius)

    def robust_two_hop(self, v: int, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        snap = self.snapshot(round_index)
        return robust_sets.robust_two_hop(snap.edges, snap.insertion_times, v)

    def triangle_pattern_set(self, v: int, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        snap = self.snapshot(round_index)
        return robust_sets.triangle_pattern_set(snap.edges, snap.insertion_times, v)

    def robust_three_hop(self, v: int, round_index: Optional[int] = None) -> FrozenSet[Edge]:
        snap = self.snapshot(round_index)
        return robust_sets.robust_three_hop(snap.edges, snap.insertion_times, v)

    # ------------------------------------------------------------------ #
    # Reference subgraphs
    # ------------------------------------------------------------------ #
    def triangles_containing(self, v: int, round_index: Optional[int] = None) -> Set[FrozenSet[int]]:
        return subgraphs.triangles_containing(self.edges_at(round_index), v)

    def cliques_containing(self, v: int, k: int, round_index: Optional[int] = None) -> Set[FrozenSet[int]]:
        return subgraphs.cliques_containing(self.edges_at(round_index), v, k)

    def cycles_of_length(self, k: int, round_index: Optional[int] = None) -> Set[FrozenSet[int]]:
        return subgraphs.cycles_of_length(self.edges_at(round_index), k)

    def is_triangle(self, nodes: Iterable[int], round_index: Optional[int] = None) -> bool:
        node_set = set(nodes)
        return len(node_set) == 3 and subgraphs.is_clique(self.edges_at(round_index), node_set)

    def is_clique(self, nodes: Iterable[int], round_index: Optional[int] = None) -> bool:
        return subgraphs.is_clique(self.edges_at(round_index), nodes)

    def set_is_cycle(self, nodes: Iterable[int], round_index: Optional[int] = None) -> bool:
        return subgraphs.set_is_cycle(self.edges_at(round_index), nodes)

    def is_cycle_ordering(self, ordering, round_index: Optional[int] = None) -> bool:
        return subgraphs.is_cycle_ordering(self.edges_at(round_index), ordering)
