"""The synchronous round engine (Figure 1 of the paper).

One round of the highly dynamic model proceeds in four stages:

1. **Topology changes.**  The adversary's batch is applied to the ground-truth
   graph and every touched node receives a local indication of the changes it
   is part of.
2. **React & send.**  Every node updates its local data structure in reaction
   to the indications and hands the engine at most one envelope per incident
   link.
3. **Receive & update.**  Envelopes are delivered along the edges of the
   *current* graph ``G_i`` and every node updates its data structure with what
   it received.
4. **Query window.**  At the end of the round the data structures may be
   queried; the engine records which nodes declare themselves inconsistent,
   which is the quantity the amortized round complexity charges.

The engine is deterministic: given the same adversary schedule and algorithm,
every run produces identical state, which the test-suite and the trace
record/replay facility rely on.

Two schedulers implement the model:

* :class:`RoundEngine` -- the *dense* reference scheduler: every node's hooks
  run every round.
* :class:`SparseRoundEngine` -- the *activity-proportional* scheduler: it
  tracks the set of nodes that could possibly act this round (received an
  indication, have a non-empty inbox, sent a message last round, or declare
  themselves non-quiescent through the
  :class:`~repro.simulator.node.QuiescenceProtocol`) and runs the hooks only
  over that set.  For algorithms honouring the quiescence contract the two
  engines produce bit-identical :class:`~repro.simulator.metrics.RoundRecord`
  streams and final node state; nodes that never declare quiescence are simply
  always active, so unported algorithms keep their dense semantics.
"""

from __future__ import annotations

from time import perf_counter
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Set

from ..obs.telemetry import SIZE_BUCKETS, TELEMETRY
from .bandwidth import BandwidthPolicy
from .events import RoundChanges
from .messages import Envelope
from .metrics import MetricsCollector, RoundRecord
from .network import DynamicNetwork, NodeIndication
from .node import NodeAlgorithm

__all__ = ["RoundEngine", "SparseRoundEngine", "MessageTargetError", "ENGINE_MODES", "create_engine"]

#: The selectable scheduler implementations, keyed by CLI / spec name.
ENGINE_MODES = ("dense", "sparse", "columnar")

#: Shared empty inbox handed to nodes that received nothing this round, so
#: quiet nodes do not cost one dict allocation each per round.  Read-only so
#: a misbehaving algorithm mutating its ``received`` mapping fails loudly
#: instead of corrupting every later quiet node in the process.
_EMPTY_INBOX: Mapping[int, Envelope] = MappingProxyType({})


class MessageTargetError(RuntimeError):
    """A node attempted to send an envelope to a non-neighbor.

    In the model a node can only communicate over its currently incident
    edges; addressing anyone else indicates a bug in the algorithm, so the
    engine fails loudly rather than silently dropping the message.
    """


class RoundEngine:
    """Executes rounds of the highly dynamic model over a set of node algorithms.

    Args:
        network: the ground-truth dynamic graph.
        nodes: mapping from node id to its :class:`NodeAlgorithm` instance;
            must contain every node of the network.
        bandwidth: the per-link bandwidth policy.
        metrics: collector that accumulates the amortized-complexity measures.
    """

    def __init__(
        self,
        network: DynamicNetwork,
        nodes: Mapping[int, NodeAlgorithm],
        bandwidth: Optional[BandwidthPolicy] = None,
        metrics: Optional[MetricsCollector] = None,
        faults=None,
    ) -> None:
        # O(1)-ish cover check: n distinct keys within [0, n) are exactly
        # range(n), so lengths plus min/max bounds replace materializing two
        # n-element sets on every engine construction (each differential leg
        # builds an engine, so this used to cost O(n) per mode).
        n = network.n
        if len(nodes) != n or (nodes and (min(nodes) < 0 or max(nodes) >= n)):
            missing = sorted(set(network.nodes) - set(nodes))
            unexpected = sorted(k for k in nodes if not (0 <= k < n))
            raise ValueError(
                "nodes mapping must cover exactly the network's nodes: "
                f"missing ids {missing[:8]}, unexpected ids {unexpected[:8]}"
            )
        self.network = network
        self.nodes: Dict[int, NodeAlgorithm] = dict(nodes)
        self.bandwidth = bandwidth if bandwidth is not None else BandwidthPolicy()
        self.metrics = metrics if metrics is not None else MetricsCollector()
        #: Optional :class:`~repro.faults.models.FaultPlan`.  The engine
        #: consults it at exactly two points -- amnesia resets right after the
        #: topology stage, message drops right after send accounting -- so the
        #: realized fault schedule is identical across engine modes.
        self.faults = faults
        self._last_inconsistent: List[int] = []

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #
    def execute_round(self, changes: RoundChanges) -> RoundRecord:
        """Run one full round with the given topology-change batch.

        Returns the :class:`~repro.simulator.metrics.RoundRecord` of the round.
        """
        round_index = self.network.round_index + 1
        n = self.network.n
        # Telemetry is pure read-only bookkeeping on the monotonic clock;
        # caching the enabled flag keeps the disabled cost at one local bool
        # check per stage and per node.  Stage timings use manual
        # perf_counter checkpoints (not span()) because compute and route are
        # interleaved in the send loop below.
        tel = TELEMETRY
        tel_on = tel.enabled
        tracer = tel.tracer if tel_on else None
        if tel_on:
            t_round = t0 = perf_counter()

        # Stage 1: topology changes and local indications.
        indications = self.network.apply_changes(round_index, changes)
        faults = self.faults
        if faults is not None:
            # Amnesia recoveries: the node comes back blank and then receives
            # this round's (re-insertion) indications like everyone else.
            for v in faults.resets_for_round(round_index):
                self.nodes[v] = faults.fresh_node(v, n)
        drops = faults is not None and faults.affects_delivery
        if tel_on:
            t1 = perf_counter()
            tel.record_span("engine.indications", t1 - t0)

        # Stage 2: react & send.  Inboxes are created lazily: only nodes that
        # actually receive something get a dict of their own.
        inboxes: Dict[int, Dict[int, Envelope]] = {}
        num_envelopes = 0
        bits_sent = 0
        for v, algo in self.nodes.items():
            ind = indications.get(v, NodeIndication.empty())
            algo.on_topology_change(round_index, ind.inserted, ind.deleted)
        if tel_on:
            t2 = perf_counter()
            react_s = t2 - t1

        compose_s = 0.0
        for v, algo in self.nodes.items():
            if tel_on:
                c0 = perf_counter()
            outgoing = algo.compose_messages(round_index)
            if tel_on:
                compose_s += perf_counter() - c0
            for target, envelope in outgoing.items():
                if target == v:
                    raise MessageTargetError(f"node {v} attempted to message itself")
                if not self.network.has_edge(v, target):
                    raise MessageTargetError(
                        f"round {round_index}: node {v} addressed non-neighbor {target}"
                    )
                size = self.bandwidth.charge(round_index, v, target, envelope, n)
                if not envelope.is_silent:
                    num_envelopes += 1
                    bits_sent += size
                    # A dropped message is sent-but-lost: it was charged and
                    # counted above, it just never reaches the inbox, so the
                    # round records stay identical across engine modes.
                    if drops and faults.message_dropped(round_index, v, target):
                        continue
                    inboxes.setdefault(target, {})[v] = envelope
        if tel_on:
            t3 = perf_counter()
            # compute = every algorithm callback; route = validation, charging
            # and inbox construction around them.
            tel.record_span("engine.compute", react_s + compose_s)
            tel.record_span("engine.route", (t3 - t2) - compose_s)

        # Stage 3: receive & update.
        for v, algo in self.nodes.items():
            algo.on_messages(round_index, inboxes.get(v, _EMPTY_INBOX))
        if tel_on:
            t4 = perf_counter()
            tel.record_span("engine.deliver", t4 - t3)

        # Stage 4: query window -- record consistency.
        inconsistent = [v for v, algo in self.nodes.items() if not algo.is_consistent()]
        self._last_inconsistent = inconsistent
        record = self.metrics.record_round(
            round_index=round_index,
            num_changes=len(changes),
            inconsistent_nodes=inconsistent,
            num_envelopes=num_envelopes,
            bits_sent=bits_sent,
        )
        if tel_on:
            t5 = perf_counter()
            tel.record_span("engine.query", t5 - t4)
            tel.record_span("engine.round", t5 - t_round)
            if tracer is not None:
                # Timeline slices must be contiguous, so the interleaved
                # compute/route region exports as one "engine.send" slice.
                tracer.add("engine.indications", t0, t1, round_index=round_index, mode="dense")
                tracer.add("engine.react", t1, t2, round_index=round_index, mode="dense")
                tracer.add("engine.send", t2, t3, round_index=round_index, mode="dense")
                tracer.add("engine.deliver", t3, t4, round_index=round_index, mode="dense")
                tracer.add("engine.query", t4, t5, round_index=round_index, mode="dense")
                tracer.add("engine.round", t_round, t5, round_index=round_index, mode="dense")
            tel.count("engine.rounds")
            tel.count("engine.envelopes", num_envelopes)
            tel.observe("engine.active_set", n, SIZE_BUCKETS)
            for inbox in inboxes.values():
                tel.observe("engine.inbox_fanout", len(inbox), SIZE_BUCKETS)
            tel.tick()
        return record

    def execute_quiet_round(self) -> RoundRecord:
        """Run one round with no topology changes."""
        return self.execute_round(RoundChanges.empty())

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def all_consistent(self) -> bool:
        """Whether every node declared itself consistent at the end of the last round."""
        return not self._last_inconsistent

    @property
    def inconsistent_nodes(self) -> List[int]:
        """Nodes inconsistent at the end of the last executed round."""
        return list(self._last_inconsistent)

    @property
    def last_active_nodes(self) -> Optional[Set[int]]:
        """Nodes whose hooks ran in the last round, or ``None`` for "all".

        The dense engine visits every node every round, so it reports
        ``None``; the sparse engine reports its touched set, which
        activity-proportional per-round validators (e.g. the incremental
        oracle checks) use to skip nodes whose local state cannot have
        changed.
        """
        return None

    @property
    def drain_fixpoint(self) -> bool:
        """Whether further quiet rounds provably cannot change any node.

        The dense engine runs every hook every round and therefore never
        proves a fixpoint; the sparse engine reports ``True`` once its
        active set is empty (no dirty nodes, nobody sent last round), at
        which point a quiet round is a no-op and the remaining drain rounds
        can be batched into their (already-known) outcome.
        """
        return False

    def run_until_quiet(self, max_rounds: int = 10_000) -> int:
        """Execute quiet rounds until all nodes are consistent.

        Returns the number of quiet rounds executed.  Raises ``RuntimeError``
        if consistency is not reached within ``max_rounds`` (which would
        indicate a livelock in the algorithm under test).

        Boundary contract (pinned by the test-suite): ``max_rounds`` is an
        inclusive budget.  A system needing exactly ``max_rounds`` quiet
        rounds gets them and the call returns ``max_rounds``; the error is
        raised only when the nodes are still inconsistent *after*
        ``max_rounds`` quiet rounds have run.
        """
        executed = 0
        # The consistency state refers to the end of the last executed round;
        # if no round ran yet, everything is vacuously consistent.
        if not self.metrics.rounds:
            return 0
        while not self.all_consistent:
            # Quiet-round fast-forward: once the engine proves a fixpoint
            # (empty active set with no pending changes), every remaining
            # drain round is a no-op -- batch them into the terminal verdict
            # instead of executing max_rounds trivial rounds one by one.
            if self.drain_fixpoint:
                raise RuntimeError(
                    f"nodes {self.inconsistent_nodes[:6]} can never become "
                    f"consistent: the engine reached a quiescent fixpoint after "
                    f"{executed} quiet rounds (no active nodes, no pending "
                    "changes), so the remaining drain rounds were fast-forwarded"
                )
            if executed >= max_rounds:
                raise RuntimeError(
                    f"nodes still inconsistent after {max_rounds} quiet rounds"
                )
            self.execute_quiet_round()
            executed += 1
        return executed


class SparseRoundEngine(RoundEngine):
    """A round engine that only touches nodes with something to do.

    Per round the engine visits the **active set**: nodes that received a
    topology indication, nodes holding a non-empty inbox, nodes that sent a
    message in the previous round, and nodes whose algorithm reports
    ``is_quiescent() == False`` (dirty local state, e.g. a non-empty update
    queue or a pending consistency flip).  Everybody else is skipped entirely
    -- no callbacks, no inbox allocation, no consistency re-query; their
    cached consistency verdict is carried forward, which is sound because the
    quiescence contract guarantees the skipped hooks would have been no-ops.

    With every registered algorithm ported to the
    :class:`~repro.simulator.node.QuiescenceProtocol`, wall-clock per round is
    proportional to actual activity instead of ``n``, while the produced
    :class:`~repro.simulator.metrics.RoundRecord` stream, traces, bandwidth
    accounting and final node state stay bit-identical to
    :class:`RoundEngine`.
    """

    def __init__(
        self,
        network: DynamicNetwork,
        nodes: Mapping[int, NodeAlgorithm],
        bandwidth: Optional[BandwidthPolicy] = None,
        metrics: Optional[MetricsCollector] = None,
        faults=None,
    ) -> None:
        super().__init__(network, nodes, bandwidth, metrics, faults)
        # Nodes whose algorithm self-reports dirty state.  Unported algorithms
        # (default is_quiescent() == False) live here permanently, which
        # degrades gracefully to the dense schedule for them.
        self._dirty: Set[int] = {
            v for v, algo in self.nodes.items() if not algo.is_quiescent()
        }
        # Nodes that emitted at least one non-silent envelope last round.
        self._sent_last_round: Set[int] = set()
        # Live inconsistent set, updated by delta as verdicts flip.
        self._inconsistent: Set[int] = set()
        # Nodes touched (hooks ran) in the most recent round.
        self._last_touched: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #
    def execute_round(self, changes: RoundChanges) -> RoundRecord:
        """Run one round over the active set only; mirrors the dense engine."""
        round_index = self.network.round_index + 1
        n = self.network.n
        nodes = self.nodes
        tel = TELEMETRY
        tel_on = tel.enabled
        tracer = tel.tracer if tel_on else None
        if tel_on:
            t_round = t0 = perf_counter()

        # Stage 1: topology changes and local indications.
        indications = self.network.apply_changes(round_index, changes)
        faults = self.faults
        resets = faults.resets_for_round(round_index) if faults is not None else ()
        if resets:
            for v in resets:
                nodes[v] = faults.fresh_node(v, n)
        drops = faults is not None and faults.affects_delivery

        # The nodes that may react or send this round.  Sorted iteration keeps
        # the relative order of the dense engine's 0..n-1 sweep, so any
        # order-sensitive failure (e.g. which bandwidth violation raises
        # first) is reproduced exactly.  Reset nodes join unconditionally:
        # their fresh instance must re-query consistency/quiescence even if
        # no indication reaches them this round.
        active = sorted(
            set(indications) | self._dirty | self._sent_last_round | set(resets)
        )
        if tel_on:
            t1 = perf_counter()
            tel.record_span("engine.indications", t1 - t0)

        # Stage 2: react & send, active nodes only.
        inboxes: Dict[int, Dict[int, Envelope]] = {}
        num_envelopes = 0
        bits_sent = 0
        sent_now: Set[int] = set()
        for v in active:
            ind = indications.get(v, NodeIndication.empty())
            nodes[v].on_topology_change(round_index, ind.inserted, ind.deleted)
        if tel_on:
            t2 = perf_counter()
            react_s = t2 - t1

        compose_s = 0.0
        for v in active:
            if tel_on:
                c0 = perf_counter()
            outgoing = nodes[v].compose_messages(round_index)
            if tel_on:
                compose_s += perf_counter() - c0
            for target, envelope in outgoing.items():
                if target == v:
                    raise MessageTargetError(f"node {v} attempted to message itself")
                if not self.network.has_edge(v, target):
                    raise MessageTargetError(
                        f"round {round_index}: node {v} addressed non-neighbor {target}"
                    )
                size = self.bandwidth.charge(round_index, v, target, envelope, n)
                if not envelope.is_silent:
                    num_envelopes += 1
                    bits_sent += size
                    # The sender stays scheduled next round even when its
                    # envelope is lost (it *sent*; the drop happens in
                    # flight), matching the dense engine's dense schedule and
                    # the sharded workers' sender-side accounting.
                    sent_now.add(v)
                    if drops and faults.message_dropped(round_index, v, target):
                        continue
                    inboxes.setdefault(target, {})[v] = envelope
        if tel_on:
            t3 = perf_counter()
            tel.record_span("engine.compute", react_s + compose_s)
            tel.record_span("engine.route", (t3 - t2) - compose_s)

        # Stage 3: receive & update.  Message recipients join the active set
        # (a quiescent node can be woken only by an indication, handled above,
        # or by an incoming envelope, handled here).
        touched = sorted(set(active) | set(inboxes))
        for v in touched:
            nodes[v].on_messages(round_index, inboxes.get(v, _EMPTY_INBOX))
        if tel_on:
            t4 = perf_counter()
            tel.record_span("engine.deliver", t4 - t3)

        # Stage 4: query window.  Only touched nodes can have flipped their
        # verdict; everyone else's cached verdict stands.
        became_inconsistent: List[int] = []
        became_consistent: List[int] = []
        inconsistent = self._inconsistent
        dirty = self._dirty
        for v in touched:
            algo = nodes[v]
            if algo.is_consistent():
                if v in inconsistent:
                    inconsistent.discard(v)
                    became_consistent.append(v)
            elif v not in inconsistent:
                inconsistent.add(v)
                became_inconsistent.append(v)
            # Refresh the dirty set from the same sweep: a touched node stays
            # scheduled until it declares quiescence.
            if algo.is_quiescent():
                dirty.discard(v)
            else:
                dirty.add(v)

        self._sent_last_round = sent_now
        self._last_touched = set(touched)
        self._last_inconsistent = sorted(inconsistent)
        record = self.metrics.record_round_delta(
            round_index=round_index,
            num_changes=len(changes),
            became_inconsistent=became_inconsistent,
            became_consistent=became_consistent,
            num_envelopes=num_envelopes,
            bits_sent=bits_sent,
        )
        if tel_on:
            t5 = perf_counter()
            tel.record_span("engine.query", t5 - t4)
            tel.record_span("engine.round", t5 - t_round)
            if tracer is not None:
                tracer.add("engine.indications", t0, t1, round_index=round_index, mode="sparse")
                tracer.add("engine.react", t1, t2, round_index=round_index, mode="sparse")
                tracer.add("engine.send", t2, t3, round_index=round_index, mode="sparse")
                tracer.add("engine.deliver", t3, t4, round_index=round_index, mode="sparse")
                tracer.add("engine.query", t4, t5, round_index=round_index, mode="sparse")
                tracer.add("engine.round", t_round, t5, round_index=round_index, mode="sparse")
            tel.count("engine.rounds")
            tel.count("engine.envelopes", num_envelopes)
            tel.count("engine.quiescent_skips", n - len(touched))
            tel.observe("engine.active_set", len(active), SIZE_BUCKETS)
            tel.observe("engine.touched_set", len(touched), SIZE_BUCKETS)
            for inbox in inboxes.values():
                tel.observe("engine.inbox_fanout", len(inbox), SIZE_BUCKETS)
            tel.tick()
        return record

    @property
    def last_active_nodes(self) -> Optional[Set[int]]:
        """The touched set of the last round (see :class:`RoundEngine`)."""
        return self._last_touched

    @property
    def drain_fixpoint(self) -> bool:
        """Whether the next quiet round's active set is provably empty.

        A quiet round contributes no indications, so the active set is
        ``dirty | sent_last_round``; when both are empty no hook runs, no
        inbox fills, and no consistency verdict can flip -- the engine's
        state is a fixpoint under quiet rounds.  (An *inconsistent* node in
        this situation has violated the quiescence contract; the drain loops
        use this property to report that immediately instead of spinning.)
        """
        return not self._dirty and not self._sent_last_round


def create_engine(
    mode: str,
    network: DynamicNetwork,
    nodes: Mapping[int, NodeAlgorithm],
    bandwidth: Optional[BandwidthPolicy] = None,
    metrics: Optional[MetricsCollector] = None,
    faults=None,
) -> RoundEngine:
    """Build a round engine by mode name (``"dense"``, ``"sparse"`` or ``"columnar"``)."""
    if mode not in ENGINE_MODES:
        raise ValueError(f"engine mode must be one of {ENGINE_MODES}, got {mode!r}")
    if mode == "columnar":
        # Imported lazily: columnar.py imports from this module.
        from .columnar import ColumnarRoundEngine

        return ColumnarRoundEngine(network, nodes, bandwidth, metrics, faults)
    cls = SparseRoundEngine if mode == "sparse" else RoundEngine
    return cls(network, nodes, bandwidth, metrics, faults)
