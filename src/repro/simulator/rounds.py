"""The synchronous round engine (Figure 1 of the paper).

One round of the highly dynamic model proceeds in four stages:

1. **Topology changes.**  The adversary's batch is applied to the ground-truth
   graph and every touched node receives a local indication of the changes it
   is part of.
2. **React & send.**  Every node updates its local data structure in reaction
   to the indications and hands the engine at most one envelope per incident
   link.
3. **Receive & update.**  Envelopes are delivered along the edges of the
   *current* graph ``G_i`` and every node updates its data structure with what
   it received.
4. **Query window.**  At the end of the round the data structures may be
   queried; the engine records which nodes declare themselves inconsistent,
   which is the quantity the amortized round complexity charges.

The engine is deterministic: given the same adversary schedule and algorithm,
every run produces identical state, which the test-suite and the trace
record/replay facility rely on.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from .bandwidth import BandwidthPolicy
from .events import RoundChanges
from .messages import Envelope
from .metrics import MetricsCollector, RoundRecord
from .network import DynamicNetwork, NodeIndication
from .node import NodeAlgorithm

__all__ = ["RoundEngine", "MessageTargetError"]


class MessageTargetError(RuntimeError):
    """A node attempted to send an envelope to a non-neighbor.

    In the model a node can only communicate over its currently incident
    edges; addressing anyone else indicates a bug in the algorithm, so the
    engine fails loudly rather than silently dropping the message.
    """


class RoundEngine:
    """Executes rounds of the highly dynamic model over a set of node algorithms.

    Args:
        network: the ground-truth dynamic graph.
        nodes: mapping from node id to its :class:`NodeAlgorithm` instance;
            must contain every node of the network.
        bandwidth: the per-link bandwidth policy.
        metrics: collector that accumulates the amortized-complexity measures.
    """

    def __init__(
        self,
        network: DynamicNetwork,
        nodes: Mapping[int, NodeAlgorithm],
        bandwidth: Optional[BandwidthPolicy] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        if set(nodes.keys()) != set(network.nodes):
            raise ValueError("nodes mapping must cover exactly the network's nodes")
        self.network = network
        self.nodes: Dict[int, NodeAlgorithm] = dict(nodes)
        self.bandwidth = bandwidth if bandwidth is not None else BandwidthPolicy()
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self._last_inconsistent: List[int] = []

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #
    def execute_round(self, changes: RoundChanges) -> RoundRecord:
        """Run one full round with the given topology-change batch.

        Returns the :class:`~repro.simulator.metrics.RoundRecord` of the round.
        """
        round_index = self.network.round_index + 1
        n = self.network.n

        # Stage 1: topology changes and local indications.
        indications = self.network.apply_changes(round_index, changes)

        # Stage 2: react & send.
        inboxes: Dict[int, Dict[int, Envelope]] = {v: {} for v in self.network.nodes}
        num_envelopes = 0
        bits_sent = 0
        for v, algo in self.nodes.items():
            ind = indications.get(v, NodeIndication.empty())
            algo.on_topology_change(round_index, ind.inserted, ind.deleted)

        for v, algo in self.nodes.items():
            outgoing = algo.compose_messages(round_index)
            for target, envelope in outgoing.items():
                if target == v:
                    raise MessageTargetError(f"node {v} attempted to message itself")
                if not self.network.has_edge(v, target):
                    raise MessageTargetError(
                        f"round {round_index}: node {v} addressed non-neighbor {target}"
                    )
                size = self.bandwidth.charge(round_index, v, target, envelope, n)
                if not envelope.is_silent:
                    num_envelopes += 1
                    bits_sent += size
                    inboxes[target][v] = envelope

        # Stage 3: receive & update.
        for v, algo in self.nodes.items():
            algo.on_messages(round_index, inboxes[v])

        # Stage 4: query window -- record consistency.
        inconsistent = [v for v, algo in self.nodes.items() if not algo.is_consistent()]
        self._last_inconsistent = inconsistent
        return self.metrics.record_round(
            round_index=round_index,
            num_changes=len(changes),
            inconsistent_nodes=inconsistent,
            num_envelopes=num_envelopes,
            bits_sent=bits_sent,
        )

    def execute_quiet_round(self) -> RoundRecord:
        """Run one round with no topology changes."""
        return self.execute_round(RoundChanges.empty())

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def all_consistent(self) -> bool:
        """Whether every node declared itself consistent at the end of the last round."""
        return not self._last_inconsistent

    @property
    def inconsistent_nodes(self) -> List[int]:
        """Nodes inconsistent at the end of the last executed round."""
        return list(self._last_inconsistent)

    def run_until_quiet(self, max_rounds: int = 10_000) -> int:
        """Execute quiet rounds until all nodes are consistent.

        Returns the number of quiet rounds executed.  Raises ``RuntimeError``
        if consistency is not reached within ``max_rounds`` (which would
        indicate a livelock in the algorithm under test).
        """
        executed = 0
        # The consistency state refers to the end of the last executed round;
        # if no round ran yet, everything is vacuously consistent.
        if not self.metrics.rounds:
            return 0
        while not self.all_consistent:
            if executed >= max_rounds:
                raise RuntimeError(
                    f"nodes still inconsistent after {max_rounds} quiet rounds"
                )
            self.execute_quiet_round()
            executed += 1
        return executed
