"""Topology-change events for highly dynamic networks.

The model of Censor-Hillel, Kolobov and Schwartzman (SPAA 2021) starts from an
empty graph on ``n`` nodes and, at the *beginning* of every round, applies an
arbitrary batch of edge insertions and deletions chosen by an adversary.  The
nodes incident to a change receive a local indication of that change before
the communication part of the round starts (Figure 1 of the paper).

This module defines the event vocabulary used throughout the simulator:

* :class:`EdgeInsert` / :class:`EdgeDelete` -- a single topology change.
* :class:`RoundChanges` -- the batch of changes applied in one round.
* :func:`canonical_edge` -- the canonical undirected-edge representation used
  everywhere in the code base (a sorted 2-tuple of node identifiers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Tuple

__all__ = [
    "Edge",
    "canonical_edge",
    "EdgeInsert",
    "EdgeDelete",
    "TopologyEvent",
    "RoundChanges",
]

#: Canonical undirected edge type: a sorted pair of node identifiers.
Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical representation of the undirected edge ``{u, v}``.

    Node identifiers are non-negative integers.  The canonical form is the
    pair sorted in increasing order, which makes edges hashable and directly
    comparable regardless of the order in which endpoints are supplied.

    Endpoints are normalized to the builtin ``int``: the rng-backed
    adversaries draw node ids through numpy and would otherwise leak
    ``np.int64`` into :class:`RoundChanges` batches, indications and recorded
    traces, where ``json.dumps`` raises and reprs (hence fingerprints) drift.
    Every edge in the code base passes through here, so this is the single
    choke point that keeps traces JSON-serializable and hash-stable.

    Raises:
        ValueError: if ``u == v`` (self loops are not part of the model) or if
            either endpoint is negative.
    """
    if type(u) is not int:
        u = int(u)
    if type(v) is not int:
        v = int(v)
    if u == v:
        raise ValueError(f"self loops are not allowed: ({u}, {v})")
    if u < 0 or v < 0:
        raise ValueError(f"node identifiers must be non-negative: ({u}, {v})")
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class EdgeInsert:
    """Insertion of the undirected edge ``{u, v}``."""

    u: int
    v: int

    @property
    def edge(self) -> Edge:
        """Canonical edge touched by this event."""
        return canonical_edge(self.u, self.v)

    @property
    def is_insert(self) -> bool:
        return True

    @property
    def is_delete(self) -> bool:
        return False


@dataclass(frozen=True)
class EdgeDelete:
    """Deletion of the undirected edge ``{u, v}``."""

    u: int
    v: int

    @property
    def edge(self) -> Edge:
        """Canonical edge touched by this event."""
        return canonical_edge(self.u, self.v)

    @property
    def is_insert(self) -> bool:
        return False

    @property
    def is_delete(self) -> bool:
        return True


#: Union type of the two concrete topology events.
TopologyEvent = EdgeInsert | EdgeDelete


@dataclass
class RoundChanges:
    """The batch of topology changes applied at the beginning of one round.

    The adversary of the highly dynamic model may insert and delete an
    *arbitrary* number of edges per round; a :class:`RoundChanges` instance is
    simply the ordered collection of those events.  The order inside a batch
    has no semantic meaning (all changes of a round are simultaneous), but a
    batch may not contain two events touching the same edge -- the adversary
    must pick, for every edge, at most one of "insert" or "delete" per round.

    Attributes:
        events: the topology events of the round.
    """

    events: list[TopologyEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[Edge] = set()
        for ev in self.events:
            e = ev.edge
            if e in seen:
                raise ValueError(
                    f"round batch contains more than one event for edge {e}"
                )
            seen.add(e)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "RoundChanges":
        """A round with no topology changes (a *quiet* round)."""
        return cls([])

    @classmethod
    def coalesce(cls, events: Iterable[TopologyEvent]) -> "RoundChanges":
        """Build a batch from raw events, keeping only the last event per edge.

        External event feeds (recorded link up/down logs, gossip dumps) often
        report the same link several times inside one round window; the model
        requires at most one event per edge per round.  This normalizer keeps
        the *last* event for each edge -- the link's state at the end of the
        window -- ordering the surviving events by their last occurrence so
        repeated conversions of the same feed are deterministic.
        """
        last: dict[Edge, TopologyEvent] = {}
        for ev in events:
            edge = ev.edge  # canonicalizes + validates endpoints
            if edge in last:
                del last[edge]  # re-insert so the edge moves to its last slot
            last[edge] = ev
        return cls(list(last.values()))

    @classmethod
    def inserts(cls, edges: Iterable[Tuple[int, int]]) -> "RoundChanges":
        """Build a batch consisting only of insertions of ``edges``."""
        return cls([EdgeInsert(u, v) for (u, v) in edges])

    @classmethod
    def deletes(cls, edges: Iterable[Tuple[int, int]]) -> "RoundChanges":
        """Build a batch consisting only of deletions of ``edges``."""
        return cls([EdgeDelete(u, v) for (u, v) in edges])

    @classmethod
    def of(
        cls,
        insert: Iterable[Tuple[int, int]] = (),
        delete: Iterable[Tuple[int, int]] = (),
    ) -> "RoundChanges":
        """Build a batch with both insertions and deletions."""
        evs: list[TopologyEvent] = [EdgeDelete(u, v) for (u, v) in delete]
        evs.extend(EdgeInsert(u, v) for (u, v) in insert)
        return cls(evs)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def insertions(self) -> list[Edge]:
        """Canonical edges inserted in this round."""
        return [ev.edge for ev in self.events if ev.is_insert]

    @property
    def deletions(self) -> list[Edge]:
        """Canonical edges deleted in this round."""
        return [ev.edge for ev in self.events if ev.is_delete]

    def touched_nodes(self) -> set[int]:
        """All nodes incident to at least one event of the batch."""
        nodes: set[int] = set()
        for ev in self.events:
            nodes.update(ev.edge)
        return nodes

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self) -> Iterator[TopologyEvent]:
        return iter(self.events)

    def extend(self, events: Sequence[TopologyEvent]) -> None:
        """Append further events, re-validating edge uniqueness."""
        self.events.extend(events)
        self.__post_init__()
