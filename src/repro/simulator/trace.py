"""Recording and replaying topology-change traces.

Every experiment in the benchmark harness is driven by an adversary; for
reproducibility (and to compare two algorithms on *exactly* the same dynamic
graph) the simulator can record the realized schedule as a
:class:`TopologyTrace` and replay it later.  Traces serialise to plain JSON so
they can be stored next to benchmark results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .adversary import Adversary, AdversaryView
from .events import RoundChanges

__all__ = ["TopologyTrace", "TraceRecordingAdversary", "TraceReplayAdversary"]


@dataclass
class TopologyTrace:
    """A realized topology-change schedule.

    Attributes:
        n: number of nodes the trace was produced for.
        rounds: one entry per round, each a pair
            ``(inserted_edges, deleted_edges)``.
    """

    n: int
    rounds: List[Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]] = field(
        default_factory=list
    )

    def append(self, changes: RoundChanges) -> None:
        """Record one round's batch."""
        self.rounds.append(
            (
                [tuple(e) for e in changes.insertions],
                [tuple(e) for e in changes.deletions],
            )
        )

    @classmethod
    def from_batches(
        cls, n: int, batches: Iterable[RoundChanges], *, validate: bool = True
    ) -> "TopologyTrace":
        """Build a trace from an ordered sequence of per-round batches.

        This is the normalized-ingest path: external event feeds (see
        :mod:`repro.serve.ingest`) are converted into canonical
        :class:`RoundChanges` batches and then frozen into a trace here, so
        recorded real-world churn replays through the exact machinery every
        adversary uses.  With ``validate`` (default) the resulting trace is
        checked against ``range(n)`` immediately, so a feed referencing
        out-of-range nodes fails at conversion time instead of mid-replay.
        """
        trace = cls(n=n)
        for changes in batches:
            trace.append(changes)
        return trace.validate_nodes() if validate else trace

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_changes(self) -> int:
        return sum(len(ins) + len(dels) for ins, dels in self.rounds)

    def changes_for(self, index: int) -> RoundChanges:
        """The batch recorded for the ``index``-th round (0-based)."""
        ins, dels = self.rounds[index]
        return RoundChanges.of(insert=ins, delete=dels)

    def max_node_id(self) -> int:
        """The largest node id any recorded event references (``-1`` if none)."""
        return max(
            (x for ins, dels in self.rounds for edge in (*ins, *dels) for x in edge),
            default=-1,
        )

    def validate_nodes(self, n: Optional[int] = None) -> "TopologyTrace":
        """Reject schedules referencing nodes outside ``range(n)``.

        ``n`` defaults to the trace's own declared node count.  Raises
        ``ValueError`` naming the first offending round and edge; returns the
        trace itself so construction sites can chain the call.  Replay is
        strict on purpose: a trace touching nodes absent from the initial
        network was either recorded for a different network or corrupted,
        and the fuzz shrinker's node-renaming pass depends on such schedules
        failing loudly instead of half-applying.
        """
        limit = self.n if n is None else n
        for index, (ins, dels) in enumerate(self.rounds):
            for edge in (*ins, *dels):
                for x in edge:
                    if not 0 <= x < limit:
                        raise ValueError(
                            f"trace references node {x} (edge {tuple(edge)} in round "
                            f"{index + 1}) but the initial network only has nodes "
                            f"0..{limit - 1}"
                        )
        return self

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {
            "n": self.n,
            "rounds": [
                {"insert": [list(e) for e in ins], "delete": [list(e) for e in dels]}
                for ins, dels in self.rounds
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TopologyTrace":
        trace = cls(n=int(data["n"]))
        for entry in data["rounds"]:
            trace.rounds.append(
                (
                    [tuple(int(x) for x in e) for e in entry["insert"]],
                    [tuple(int(x) for x in e) for e in entry["delete"]],
                )
            )
        return trace

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "TopologyTrace":
        """Read a trace previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


class TraceRecordingAdversary(Adversary):
    """Wraps another adversary and records the schedule it actually produced."""

    def __init__(self, inner: Adversary, n: int) -> None:
        self.inner = inner
        self.trace = TopologyTrace(n=n)

    def changes_for_round(self, view: AdversaryView) -> Optional[RoundChanges]:
        changes = self.inner.changes_for_round(view)
        if changes is not None:
            self.trace.append(changes)
        return changes

    @property
    def is_done(self) -> bool:
        return self.inner.is_done


class TraceReplayAdversary(Adversary):
    """Replays a previously recorded :class:`TopologyTrace` round by round.

    The trace is validated up front: a schedule referencing node ids outside
    the trace's declared ``range(n)`` is rejected with a clear error (see
    :meth:`TopologyTrace.validate_nodes`) rather than surfacing mid-run or
    silently relying on the host network being larger than recorded.
    """

    def __init__(self, trace: TopologyTrace) -> None:
        self.trace = trace.validate_nodes()
        self._cursor = 0

    def changes_for_round(self, view: AdversaryView) -> Optional[RoundChanges]:
        if self._cursor >= self.trace.num_rounds:
            return None
        changes = self.trace.changes_for(self._cursor)
        self._cursor += 1
        return changes

    @property
    def is_done(self) -> bool:
        return self._cursor >= self.trace.num_rounds
