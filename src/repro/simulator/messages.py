"""Message vocabulary with honest bit-size accounting.

The highly dynamic model inherits the CONGEST bandwidth restriction: a node
may send ``O(log n)`` bits over each incident edge per round.  To make that
restriction meaningful in a simulation, every message class implements
:meth:`BaseMessage.size_bits`, which charges ``ceil(log2 n)`` bits per node
identifier it carries plus a small constant for marks and flags.  The
:mod:`repro.simulator.bandwidth` module compares these sizes against the
per-link budget.

All the algorithms of the paper can be expressed with a handful of message
shapes, which are defined here and shared across the core library:

* :class:`EdgeEventMessage` -- an edge together with an insert/delete mark and
  a temporal-pattern mark (pattern *(a)* or *(b)* of Figure 2).  Used by the
  robust 2-hop neighborhood (Theorem 7), triangle membership listing
  (Theorem 1) and the Lemma 1 baseline.
* :class:`PathInsertMessage` -- a short path (1--3 edges) announcing a newly
  learned edge along that path.  Used by the robust 3-hop neighborhood
  (Theorem 6).
* :class:`EdgeDeleteHopMessage` -- an edge deletion with a constant-size hop
  counter.  Used by the robust 3-hop neighborhood.
* :class:`SnapshotChunkMessage` -- a Theta(log n)-bit chunk of an ``n``-bit
  neighborhood bitmap.  Used by the Lemma 1 two-hop listing baseline.
* :class:`Envelope` -- the single per-link per-round transmission unit: an
  optional payload plus the ``IsEmpty`` / ``AreNeighborsEmpty`` control bits
  that the paper's algorithms piggyback on every message.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from .events import Edge

__all__ = [
    "id_bits",
    "EdgeOp",
    "PatternMark",
    "BaseMessage",
    "EdgeEventMessage",
    "PathInsertMessage",
    "EdgeDeleteHopMessage",
    "SnapshotChunkMessage",
    "Envelope",
]


def id_bits(n: int) -> int:
    """Number of bits charged for one node identifier in an ``n``-node network."""
    return max(1, math.ceil(math.log2(max(2, n))))


class EdgeOp(Enum):
    """Insert/delete mark attached to edge event messages."""

    INSERT = "insert"
    DELETE = "delete"


class PatternMark(Enum):
    """Temporal-pattern mark of Figure 2 in the paper.

    Pattern ``A`` tags ordinary robust-2-hop announcements (the far edge is
    not older than the edge towards the announcer); pattern ``B`` tags the
    triangle-completion hints of Theorem 1 (the far edge is older than both
    incident edges).
    """

    A = "a"
    B = "b"


class BaseMessage:
    """Base class for all messages; subclasses must report their bit size."""

    def size_bits(self, n: int) -> int:
        """Size of this message in bits, for an ``n``-node network."""
        raise NotImplementedError


@dataclass(frozen=True)
class EdgeEventMessage(BaseMessage):
    """An edge announcement: ``edge`` plus insert/delete and pattern marks.

    This is the message of the Theorem 7 / Theorem 1 algorithms: two node
    identifiers, one insert/delete bit and one pattern bit.  No timestamps are
    ever transmitted -- the receiver derives *imaginary* timestamps from the
    insertion times of its own incident edges, exactly as in the paper.
    """

    edge: Edge
    op: EdgeOp
    pattern: PatternMark = PatternMark.A

    def size_bits(self, n: int) -> int:
        return 2 * id_bits(n) + 2


@dataclass(frozen=True)
class PathInsertMessage(BaseMessage):
    """A newly learned path, announced towards nodes one hop further away.

    ``path`` is a tuple of node identifiers; consecutive entries are edges.
    The robust 3-hop algorithm only ever sends paths of one or two edges
    (receivers extend them by one hop), so the message stays within
    ``O(log n)`` bits.
    """

    path: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("a path message needs at least one edge")
        for a, b in zip(self.path, self.path[1:]):
            if a == b:
                raise ValueError(f"degenerate path {self.path}")

    @property
    def num_edges(self) -> int:
        return len(self.path) - 1

    def size_bits(self, n: int) -> int:
        return len(self.path) * id_bits(n) + 1


@dataclass(frozen=True)
class EdgeDeleteHopMessage(BaseMessage):
    """An edge deletion propagated with a constant-size hop counter.

    ``hops`` is the ``O(1)``-bit number the Theorem 6 algorithm attaches to
    deletion items so that deletions are forwarded only a constant number of
    hops.
    """

    edge: Edge
    hops: int

    def __post_init__(self) -> None:
        if self.hops < 0 or self.hops > 3:
            raise ValueError("hop counter must fit in O(1) bits (0..3)")

    def size_bits(self, n: int) -> int:
        return 2 * id_bits(n) + 3


@dataclass(frozen=True)
class SnapshotChunkMessage(BaseMessage):
    """One Theta(log n)-bit chunk of an ``n``-bit neighborhood bitmap.

    The Lemma 1 baseline sends a full neighborhood snapshot -- an ``n``-bit
    string -- split into ``ceil(n / chunk_bits)`` chunks, each of which fits
    the per-round bandwidth budget.  ``owner`` is the node whose neighborhood
    the snapshot describes, ``epoch`` identifies the snapshot so that stale
    chunks can be discarded.
    """

    owner: int
    epoch: int
    chunk_index: int
    total_chunks: int
    members: Tuple[int, ...]
    chunk_bits: int

    def size_bits(self, n: int) -> int:
        # The chunk itself plus the owner identifier and chunk bookkeeping
        # (index / total, each O(log n) because there are O(n / log n) chunks).
        return self.chunk_bits + 3 * id_bits(n)


@dataclass(frozen=True)
class Envelope(BaseMessage):
    """The single per-link per-round transmission unit.

    The paper's algorithms attach, to every message, a Boolean ``IsEmpty``
    indication of whether the sender's queue is empty, and (for the robust
    3-hop structure) an ``AreNeighborsEmpty`` indication about the sender's
    neighbors' queues in the previous round.  In the paper the *true* value is
    signalled by silence; here the simulator models an explicit envelope but
    charges zero bits for ``True`` flags and one bit for ``False`` flags so the
    accounting matches.

    Attributes:
        payload: the carried message, if any.
        is_empty: the sender's queue was empty at the start of the round.
        are_neighbors_empty: all of the sender's neighbors reported empty
            queues in the previous round (``None`` for algorithms that do not
            use this indication).
    """

    payload: Optional[BaseMessage] = None
    is_empty: bool = True
    are_neighbors_empty: Optional[bool] = None

    def size_bits(self, n: int) -> int:
        bits = 0 if self.payload is None else self.payload.size_bits(n)
        if not self.is_empty:
            bits += 1
        if self.are_neighbors_empty is False:
            bits += 1
        return bits

    @property
    def is_silent(self) -> bool:
        """Whether the envelope carries no information (nothing is sent)."""
        return (
            self.payload is None
            and self.is_empty
            and self.are_neighbors_empty in (None, True)
        )
