"""The adversary interface of the highly dynamic model.

The adversary decides, at the beginning of every round, which edges are
inserted and deleted.  It is computationally unbounded and fully adaptive: it
sees the entire ground-truth graph and knows whether the algorithm's data
structures were consistent at the end of the previous round (several of the
paper's lower-bound constructions explicitly "wait for the algorithm to
stabilize" between steps, which requires exactly this knowledge).

Concrete adversaries live in :mod:`repro.adversary`; the simulator only
depends on this interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import FrozenSet, Optional

from .events import Edge, RoundChanges
from .network import DynamicNetwork

__all__ = ["AdversaryView", "Adversary"]


@dataclass(frozen=True)
class AdversaryView:
    """What the adversary is allowed to observe before choosing a round's changes.

    Attributes:
        round_index: index of the round about to start.
        n: number of nodes.
        edges: the current edge set (the graph ``G_{i-1}`` at the end of the
            previous round).
        all_consistent: whether every node's data structure declared itself
            consistent at the end of the previous round.  ``True`` before the
            first round.
        total_changes: number of topology changes applied so far.
    """

    round_index: int
    n: int
    edges: FrozenSet[Edge]
    all_consistent: bool
    total_changes: int

    @classmethod
    def from_network(
        cls, network: DynamicNetwork, round_index: int, all_consistent: bool
    ) -> "AdversaryView":
        return cls(
            round_index=round_index,
            n=network.n,
            edges=network.edges,
            all_consistent=all_consistent,
            total_changes=network.total_changes,
        )


class Adversary(ABC):
    """Chooses the topology changes of every round.

    Subclasses implement :meth:`changes_for_round`.  Returning an empty batch
    is allowed (a quiet round); returning ``None`` signals that the adversary
    has finished its schedule, after which the runner either stops or keeps
    executing quiet rounds, depending on how it was invoked.
    """

    @abstractmethod
    def changes_for_round(self, view: AdversaryView) -> Optional[RoundChanges]:
        """The batch of changes to apply at the beginning of this round."""

    @property
    def is_done(self) -> bool:
        """Whether the adversary has exhausted its schedule.

        The default implementation never finishes; schedule-driven adversaries
        override this so runners can stop as soon as the scenario is over.
        """
        return False
