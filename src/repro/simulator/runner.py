"""High-level orchestration of a full simulation.

:class:`SimulationRunner` wires together the four ingredients of an
experiment -- a network size, an algorithm factory, an adversary and a
bandwidth policy -- runs the round loop, and returns a
:class:`SimulationResult` containing the metrics the paper's theorems bound.
Optional per-round validators (used heavily by the test-suite) allow checking
algorithm answers against the centralized oracle after every round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Set

from .adversary import Adversary, AdversaryView
from .bandwidth import BandwidthPolicy
from .events import RoundChanges
from .metrics import MetricsCollector
from .network import DynamicNetwork
from .node import AlgorithmFactory, NodeAlgorithm
from .rounds import ENGINE_MODES, RoundEngine, create_engine
from .trace import TopologyTrace, TraceRecordingAdversary

__all__ = [
    "ActiveNodesView",
    "RoundValidator",
    "SimulationResult",
    "SimulationRunner",
    "drive_engine",
]

#: A per-round validation hook: ``validator(round_index, network, nodes)``.
#: Validators are called after the query window of every round and should
#: raise (e.g. ``AssertionError``) when the algorithm misbehaves.
RoundValidator = Callable[[int, DynamicNetwork, Mapping[int, NodeAlgorithm]], None]


class ActiveNodesView(Mapping):
    """The nodes mapping handed to round validators, annotated with activity.

    Behaves exactly like the plain ``{node_id: algorithm}`` mapping (O(1)
    wrapper, no copying), but additionally carries :attr:`active_ids` -- the
    engine's last-round active set, or ``None`` when the engine visited every
    node (the dense scheduler).  Activity-aware validators (the incremental
    oracle checks) read the attribute via ``getattr(nodes, "active_ids",
    None)``, so plain dicts keep working wherever tests call validators
    directly.
    """

    __slots__ = ("_nodes", "active_ids")

    def __init__(
        self, nodes: Mapping[int, NodeAlgorithm], active_ids: Optional[Set[int]]
    ) -> None:
        self._nodes = nodes
        self.active_ids = active_ids

    def __getitem__(self, key: int) -> NodeAlgorithm:
        return self._nodes[key]

    def __iter__(self) -> Iterator[int]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)


@dataclass
class SimulationResult:
    """Everything a finished simulation exposes for analysis.

    Attributes:
        metrics: the amortized-complexity accounting.
        network: the final ground-truth graph.
        nodes: the node algorithm instances (their final local state).
        bandwidth: the bandwidth policy with its accumulated statistics.
        trace: the realized topology trace, if recording was requested.
        faults: the :class:`~repro.faults.models.FaultPlan` of the run (with
            its accumulated fault statistics), or ``None``.
    """

    metrics: MetricsCollector
    network: DynamicNetwork
    nodes: Dict[int, NodeAlgorithm]
    bandwidth: BandwidthPolicy
    trace: Optional[TopologyTrace] = None
    faults: object = None

    @property
    def amortized_round_complexity(self) -> float:
        """Shortcut for the headline measure of the paper."""
        return self.metrics.amortized_round_complexity()

    def summary(self) -> Dict[str, float]:
        """Merged metrics and bandwidth summary."""
        out = dict(self.metrics.summary())
        for key, value in self.bandwidth.summary(self.network.n).items():
            out[f"bandwidth_{key}"] = float(value)
        return out


def drive_engine(
    engine,
    adversary: Adversary,
    *,
    num_rounds: Optional[int] = None,
    drain: bool = True,
    max_drain_rounds: int = 10_000,
    after_round: Optional[Callable[[], None]] = None,
) -> int:
    """Drive any round engine against an adversary; returns rounds executed.

    Works with every object exposing the round-engine surface (``network``,
    ``all_consistent``, ``execute_round``, ``execute_quiet_round``) -- both
    :class:`~repro.simulator.rounds.RoundEngine` and
    :class:`~repro.simulator.parallel.ShardedRoundEngine`.  ``after_round``
    runs after every executed round, including drain rounds (the runner hooks
    its validators here).
    """
    if num_rounds is None and not hasattr(adversary, "is_done"):
        raise ValueError("num_rounds is required for open-ended adversaries")

    executed = 0
    while True:
        if num_rounds is not None and executed >= num_rounds:
            break
        if adversary.is_done:
            break
        view = AdversaryView.from_network(
            engine.network,
            round_index=engine.network.round_index + 1,
            all_consistent=engine.all_consistent,
        )
        changes = adversary.changes_for_round(view)
        if changes is None:
            break
        engine.execute_round(changes)
        executed += 1
        if after_round is not None:
            after_round()

    if drain:
        # The adversary is never consulted during the drain, so topology
        # faults freeze on their own; the plan latches message loss off too
        # (unless configured ``during_drain``), otherwise a self-stabilizing
        # protocol re-sending the same lost update could drain forever.
        faults = getattr(engine, "faults", None)
        if faults is not None:
            faults.enter_drain()
        drained = 0
        while not engine.all_consistent:
            # Quiet-round fast-forward (see RoundEngine.drain_fixpoint): when
            # the engine proves that no further quiet round can change any
            # node, the remaining drain rounds are batched into the terminal
            # verdict instead of being executed one by one.
            if getattr(engine, "drain_fixpoint", False):
                raise RuntimeError(
                    f"nodes {engine.inconsistent_nodes[:6]} can never become "
                    f"consistent: the engine reached a quiescent fixpoint after "
                    f"{drained} drain rounds (no active nodes, no pending "
                    "changes), so the remaining drain rounds were fast-forwarded"
                )
            if drained >= max_drain_rounds:
                raise RuntimeError(
                    f"nodes still inconsistent after {max_drain_rounds} drain rounds"
                )
            engine.execute_quiet_round()
            drained += 1
            if after_round is not None:
                after_round()
    return executed


class SimulationRunner:
    """Builds and drives a complete highly-dynamic-network simulation.

    Args:
        n: number of nodes.
        algorithm_factory: callable building the per-node algorithm,
            ``factory(node_id, n)``.
        adversary: the topology-change schedule.
        bandwidth_factor: hidden constant of the ``O(log n)`` per-link budget.
        strict_bandwidth: whether exceeding the budget raises (default) or is
            merely recorded (for intentionally wasteful baselines).
        record_trace: whether to record the realized schedule for replay.
        validators: per-round validation hooks.
        engine_mode: ``"sparse"`` (default; activity-proportional scheduling
            via :class:`~repro.simulator.rounds.SparseRoundEngine`) or
            ``"dense"`` (the reference scheduler visiting every node every
            round).  Both produce identical results; sparse is markedly
            faster on large, low-churn networks.
    """

    def __init__(
        self,
        n: int,
        algorithm_factory: AlgorithmFactory,
        adversary: Adversary,
        *,
        bandwidth_factor: int = 8,
        strict_bandwidth: bool = True,
        record_trace: bool = False,
        validators: Optional[List[RoundValidator]] = None,
        engine_mode: str = "sparse",
        faults=None,
    ) -> None:
        if engine_mode not in ENGINE_MODES:
            raise ValueError(
                f"engine_mode must be one of {ENGINE_MODES}, got {engine_mode!r}"
            )
        self.n = n
        self.engine_mode = engine_mode
        self.network = DynamicNetwork(n)
        self.nodes: Dict[int, NodeAlgorithm] = {
            v: algorithm_factory(v, n) for v in range(n)
        }
        self.bandwidth = BandwidthPolicy(factor=bandwidth_factor, strict=strict_bandwidth)
        self.metrics = MetricsCollector()
        self.faults = faults
        if faults is not None:
            # The plan rebuilds amnesiac nodes through the same factory.
            faults.algorithm_factory = algorithm_factory
            if faults.affects_topology:
                # Imported lazily: repro.faults depends on the simulator's
                # submodules, so the top level must not import back into it.
                from ..faults.overlay import FaultOverlayAdversary

                adversary = FaultOverlayAdversary(adversary, n, faults)
        self.engine = create_engine(
            engine_mode, self.network, self.nodes, self.bandwidth, self.metrics, faults
        )
        # Alias the engine's nodes dict (create_engine copies the mapping) so
        # amnesia resets replacing instances in-place stay visible to the
        # validators and to SimulationResult.nodes.
        self.nodes = self.engine.nodes
        self._validators: List[RoundValidator] = list(validators or [])
        if record_trace:
            # Trace recording wraps *outside* the fault overlay: recorded
            # traces are the physical post-fault schedule, identical across
            # engines and replayable without the overlay.
            self.adversary: Adversary = TraceRecordingAdversary(adversary, n)
        else:
            self.adversary = adversary

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def add_validator(self, validator: RoundValidator) -> None:
        """Register an additional per-round validation hook."""
        self._validators.append(validator)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        num_rounds: Optional[int] = None,
        *,
        drain: bool = True,
        max_drain_rounds: int = 10_000,
    ) -> SimulationResult:
        """Run the simulation.

        Args:
            num_rounds: maximum number of adversary-driven rounds to execute.
                ``None`` means "until the adversary reports it is done" (only
                valid for finite-schedule adversaries).
            drain: after the adversary finishes (or ``num_rounds`` is
                reached), keep executing quiet rounds until every node is
                consistent.  This matches the paper's long-lived-network view
                in which the environment eventually gives the algorithm time
                to catch up, and makes end-of-run query checks meaningful.
            max_drain_rounds: safety bound on the drain phase.

        Returns:
            The :class:`SimulationResult`.
        """
        drive_engine(
            self.engine,
            self.adversary,
            num_rounds=num_rounds,
            drain=drain,
            max_drain_rounds=max_drain_rounds,
            after_round=self._run_validators,
        )

        trace = None
        if isinstance(self.adversary, TraceRecordingAdversary):
            trace = self.adversary.trace
        return SimulationResult(
            metrics=self.metrics,
            network=self.network,
            nodes=self.nodes,
            bandwidth=self.bandwidth,
            trace=trace,
            faults=self.faults,
        )

    def step(self, changes: RoundChanges) -> None:
        """Execute a single externally supplied round (bypassing the adversary).

        Useful for interactive exploration and for tests that drive the
        engine directly.
        """
        self.engine.execute_round(changes)
        self._run_validators()

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _run_validators(self) -> None:
        if not self._validators:
            return
        nodes = ActiveNodesView(
            self.nodes, getattr(self.engine, "last_active_nodes", None)
        )
        for validator in self._validators:
            validator(self.network.round_index, self.network, nodes)
