"""Process-parallel execution of the round engine for large simulations.

The per-node phases of a round (react & send, receive & update) are
embarrassingly parallel: every node only touches its own local state and the
messages addressed to it.  For simulations with many nodes the
:class:`ShardedRoundEngine` partitions the nodes into shards, each owned by a
persistent worker process, and exchanges only the per-round message batches
with the coordinator -- the same communicate-by-message idiom used in
MPI-style programs (each worker behaves like a rank that scatters/gathers one
batch per superstep).

The sharded engine is a drop-in behavioural mirror of
:class:`repro.simulator.rounds.RoundEngine`: given the same adversary schedule
it produces identical metrics, because all cross-node interaction still flows
through the coordinator's ground-truth network and bandwidth policy.  In its
default ``"sparse"`` mode it additionally mirrors the active-set scheduling of
:class:`~repro.simulator.rounds.SparseRoundEngine`: each worker only runs the
hooks of its active nodes, and the coordinator skips fully-quiescent shards
altogether (no pipe round-trip at all while a shard has nothing to do).  It is
*not* always faster -- for small ``n`` the pickling overhead dominates -- but
it lets the simulator scale past a single core for wide fan-out workloads, and
benchmark E12 measures exactly that trade-off.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from time import perf_counter
from types import MappingProxyType
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs.collect import merge_snapshot_into, record_shard_skew
from ..obs.telemetry import SIZE_BUCKETS, TELEMETRY, Telemetry
from ..obs.tracing import TraceBuffer
from .bandwidth import BandwidthPolicy
from .events import RoundChanges
from .messages import Envelope
from .metrics import MetricsCollector, RoundRecord
from .network import DynamicNetwork, NodeIndication
from .node import AlgorithmFactory
from .rounds import MessageTargetError

#: Per-worker scheduling modes the sharded coordinator supports.  The
#: columnar engine batches across the whole node population and is
#: single-process by design, so it is deliberately absent here.
_SHARDED_MODES = ("dense", "sparse")

__all__ = ["ShardedRoundEngine", "shard_nodes"]


def shard_nodes(n: int, num_shards: int) -> List[List[int]]:
    """Partition node ids ``0..n-1`` into ``num_shards`` balanced contiguous shards."""
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    num_shards = min(num_shards, n)
    shards: List[List[int]] = []
    base = n // num_shards
    extra = n % num_shards
    start = 0
    for s in range(num_shards):
        size = base + (1 if s < extra else 0)
        shards.append(list(range(start, start + size)))
        start += size
    return shards


def _worker_loop(
    conn: Any,
    shard: Sequence[int],
    n: int,
    factory: AlgorithmFactory,
    mode: str = "dense",
    worker_index: int = 0,
    instrument: bool = False,
    trace_capacity: int = 0,
) -> None:
    """Entry point of a shard worker process.

    The worker owns the node-algorithm instances of its shard and executes the
    per-node phases on command.  Commands arrive as ``(op, payload)`` tuples on
    the pipe; results are sent back the same way.

    In ``"sparse"`` mode the worker mirrors the active-set bookkeeping of
    :class:`~repro.simulator.rounds.SparseRoundEngine` for its own shard: it
    runs the hooks only over nodes that received an indication, hold an inbox,
    sent last round, or self-report dirty state, and its ``update`` reply
    carries only the consistency verdicts of the nodes it touched plus a
    ``needs_react`` flag the coordinator uses to skip the whole shard while it
    is fully quiescent.

    When ``instrument`` is set the worker runs its own *local*
    :class:`~repro.obs.telemetry.Telemetry` registry (``engine.worker.*``
    spans/counters) and, with ``trace_capacity > 0``, its own
    :class:`~repro.obs.tracing.TraceBuffer`; the coordinator pulls both back
    over this pipe with the ``telemetry`` op at shutdown.  The module
    singleton must not be used here: under ``fork`` the child inherits the
    parent's enabled registry *and its open sink file handle*, so writing
    through it would corrupt the parent's JSONL stream.
    """
    TELEMETRY.enabled = False  # neutralize the fork-inherited singleton
    TELEMETRY.sink = None
    TELEMETRY.tracer = None
    tel = Telemetry(enabled=instrument)
    tracer: Optional[TraceBuffer] = None
    if instrument and trace_capacity > 0:
        tracer = TraceBuffer(trace_capacity, worker=worker_index)
    nodes = {v: factory(v, n) for v in shard}
    # Sparse-mode activity bookkeeping (unused in dense mode).
    dirty = {v for v, algo in nodes.items() if not algo.is_quiescent()}
    sent_last: set = set()
    react_active: List[int] = []
    react_round = -1
    empty_inbox: Mapping[int, Envelope] = MappingProxyType({})
    while True:
        op, payload = conn.recv()
        if op == "stop":
            conn.send(("ok", None))
            conn.close()
            return
        if op == "react":
            round_index, indications, resets = payload
            tel_on = tel.enabled
            if tel_on:
                t0 = perf_counter()
            # Amnesia recoveries: rebuild the instance before any hook runs,
            # so the fresh node sees this round's re-insertion indications --
            # the same ordering as the serial engines.
            for v in resets:
                nodes[v] = factory(v, n)
            outgoing: Dict[int, Dict[int, Envelope]] = {}
            if mode == "sparse":
                react_active = sorted(set(indications) | dirty | sent_last | set(resets))
                react_round = round_index
            else:
                react_active = list(nodes)
            sent_now: set = set()
            for v in react_active:
                inserted, deleted = indications.get(v, ((), ()))
                nodes[v].on_topology_change(round_index, inserted, deleted)
            if tel_on:
                t1 = perf_counter()
                tel.record_span("engine.worker.indications", t1 - t0)
            for v in react_active:
                out = nodes[v].compose_messages(round_index)
                if out:
                    outgoing[v] = out
                    if any(not envelope.is_silent for envelope in out.values()):
                        sent_now.add(v)
            sent_last = sent_now
            if tel_on:
                t2 = perf_counter()
                tel.record_span("engine.worker.compute", t2 - t1)
                tel.count("engine.worker.reacts")
                tel.observe("engine.worker.active_set", len(react_active), SIZE_BUCKETS)
                if tracer is not None:
                    tracer.add(
                        "engine.worker.indications", t0, t1,
                        round_index=round_index, mode=mode,
                    )
                    tracer.add(
                        "engine.worker.compute", t1, t2,
                        round_index=round_index, mode=mode,
                    )
            conn.send(("ok", outgoing))
        elif op == "update":
            round_index, inboxes = payload
            tel_on = tel.enabled
            if tel_on:
                t0 = perf_counter()
            if mode == "sparse":
                # A skipped react leaves no active set for this round; only
                # freshly delivered inboxes can wake nodes then.
                base = react_active if react_round == round_index else []
                touched = sorted(set(base) | set(inboxes))
            else:
                touched = list(nodes)
            for v in touched:
                nodes[v].on_messages(round_index, inboxes.get(v, empty_inbox))
            consistency = {v: nodes[v].is_consistent() for v in touched}
            if mode == "sparse":
                for v in touched:
                    if nodes[v].is_quiescent():
                        dirty.discard(v)
                    else:
                        dirty.add(v)
                reply: Any = (consistency, bool(dirty or sent_last))
            else:
                reply = consistency
            if tel_on:
                t1 = perf_counter()
                tel.record_span("engine.worker.deliver", t1 - t0)
                tel.count("engine.worker.updates")
                if tracer is not None:
                    tracer.add(
                        "engine.worker.deliver", t0, t1,
                        round_index=round_index, mode=mode,
                    )
            conn.send(("ok", reply))
        elif op == "query":
            node_id, query = payload
            conn.send(("ok", nodes[node_id].query(query)))
        elif op == "state_size":
            conn.send(("ok", {v: algo.local_state_size() for v, algo in nodes.items()}))
        elif op == "fingerprint":
            conn.send(("ok", {v: algo.state_fingerprint() for v, algo in nodes.items()}))
        elif op == "telemetry":
            snapshot = tel.snapshot(final=True) if tel.enabled else None
            trace = tracer.to_dict() if tracer is not None else None
            conn.send(("ok", (snapshot, trace)))
        else:  # pragma: no cover - defensive
            conn.send(("error", f"unknown op {op!r}"))


class ShardedRoundEngine:
    """A round engine whose node phases run in persistent worker processes.

    Args:
        n: number of nodes.
        algorithm_factory: per-node algorithm factory (must be picklable or
            importable in the workers; with the default ``fork`` start method
            any callable works).
        num_workers: number of shard processes (defaults to CPU count).
        bandwidth: per-link bandwidth policy (kept in the coordinator).
        metrics: metrics collector (kept in the coordinator).
        start_method: multiprocessing start method; ``fork`` keeps closures
            usable as factories and is the default on Linux.
        mode: ``"sparse"`` (default) lets each worker run only its active
            nodes and lets the coordinator skip fully-quiescent shards
            entirely; ``"dense"`` visits every node every round.  Both modes
            produce identical metrics and state.
    """

    def __init__(
        self,
        n: int,
        algorithm_factory: AlgorithmFactory,
        *,
        num_workers: Optional[int] = None,
        bandwidth: Optional[BandwidthPolicy] = None,
        metrics: Optional[MetricsCollector] = None,
        start_method: str = "fork",
        mode: str = "sparse",
        faults=None,
    ) -> None:
        if mode not in _SHARDED_MODES:
            raise ValueError(f"mode must be one of {_SHARDED_MODES}, got {mode!r}")
        self.network = DynamicNetwork(n)
        self.bandwidth = bandwidth if bandwidth is not None else BandwidthPolicy()
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.mode = mode
        #: Optional FaultPlan; drops run in the coordinator's routing loop
        #: (the one place all cross-shard traffic flows through) and amnesia
        #: resets ship to the owning worker in the react payload.
        self.faults = faults
        if faults is not None:
            faults.algorithm_factory = algorithm_factory
        workers = num_workers if num_workers is not None else max(1, (os.cpu_count() or 2) - 1)
        self._shards = shard_nodes(n, workers)
        self._node_to_shard: Dict[int, int] = {}
        for idx, shard in enumerate(self._shards):
            for v in shard:
                self._node_to_shard[v] = idx
        ctx = mp.get_context(start_method)
        # Workers inherit the telemetry decision made at construction time:
        # if the coordinator's registry is live, each worker runs its own
        # local registry (and trace ring, if tracing is on) whose final state
        # is pulled back and merged at shutdown.
        self._workers_instrumented = TELEMETRY.enabled
        trace_capacity = (
            TELEMETRY.tracer.capacity
            if TELEMETRY.enabled and TELEMETRY.tracer is not None
            else 0
        )
        #: Final per-worker telemetry snapshots, populated by
        #: :meth:`collect_worker_telemetry` (empty until then / if disabled).
        self.worker_snapshots: List[Dict[str, Any]] = []
        self._conns = []
        self._procs = []
        for idx, shard in enumerate(self._shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_loop,
                args=(
                    child_conn,
                    shard,
                    n,
                    algorithm_factory,
                    mode,
                    idx,
                    self._workers_instrumented,
                    trace_capacity,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._last_inconsistent: List[int] = []
        # Sparse-mode coordinator state: which shards still need a react op
        # (workers report quiescence through their update replies) and the
        # live inconsistent set maintained by delta.
        self._needs_react: List[bool] = [True] * len(self._shards)
        self._inconsistent: set = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #
    def execute_round(self, changes: RoundChanges) -> RoundRecord:
        """Run one round; mirrors :meth:`RoundEngine.execute_round`."""
        if self._closed:
            raise RuntimeError("engine already shut down")
        round_index = self.network.round_index + 1
        n = self.network.n
        sparse = self.mode == "sparse"
        # Coordinator spans measure the same stage boundaries as the serial
        # engines (compute = react dispatch+gather, deliver = update
        # dispatch+gather); the workers additionally time their own hook
        # loops (engine.worker.* spans), merged in at shutdown.
        tel = TELEMETRY
        tel_on = tel.enabled
        tracer = tel.tracer if tel_on else None
        if tel_on:
            t_round = t0 = perf_counter()
        indications = self.network.apply_changes(round_index, changes)
        faults = self.faults
        resets = faults.resets_for_round(round_index) if faults is not None else ()
        drops = faults is not None and faults.affects_delivery

        # React & send, per shard.  In sparse mode a shard participates only
        # if its worker reported pending activity last round, one of its
        # nodes is touched by this round's changes, or one of its nodes
        # recovers with amnesia (the fresh instance must run its hooks).
        per_shard_indications: List[Dict[int, Tuple[tuple, tuple]]] = [
            {} for _ in self._shards
        ]
        for v, ind in indications.items():
            per_shard_indications[self._node_to_shard[v]][v] = (ind.inserted, ind.deleted)
        per_shard_resets: List[List[int]] = [[] for _ in self._shards]
        for v in resets:
            per_shard_resets[self._node_to_shard[v]].append(v)
        reacting = [
            not sparse
            or self._needs_react[idx]
            or bool(per_shard_indications[idx])
            or bool(per_shard_resets[idx])
            for idx in range(len(self._shards))
        ]
        if tel_on:
            t1 = perf_counter()
            tel.record_span("engine.indications", t1 - t0)
            if tracer is not None:
                tracer.add("engine.indications", t0, t1, round_index=round_index, mode="sharded")
        for idx, (conn, shard_ind) in enumerate(zip(self._conns, per_shard_indications)):
            if reacting[idx]:
                conn.send(("react", (round_index, shard_ind, per_shard_resets[idx])))
        outgoing_all: Dict[int, Dict[int, Envelope]] = {}
        for idx, conn in enumerate(self._conns):
            if not reacting[idx]:
                continue
            status, outgoing = conn.recv()
            if status != "ok":  # pragma: no cover - defensive
                raise RuntimeError(outgoing)
            outgoing_all.update(outgoing)
        if tel_on:
            t2 = perf_counter()
            tel.record_span("engine.compute", t2 - t1)
            if tracer is not None:
                tracer.add("engine.compute", t1, t2, round_index=round_index, mode="sharded")

        # Route messages through the coordinator (validation + bandwidth).
        inboxes: Dict[int, Dict[int, Envelope]] = {}
        num_envelopes = 0
        bits_sent = 0
        for sender, out in outgoing_all.items():
            for target, envelope in out.items():
                if target == sender:
                    raise MessageTargetError(f"node {sender} attempted to message itself")
                if not self.network.has_edge(sender, target):
                    raise MessageTargetError(
                        f"round {round_index}: node {sender} addressed non-neighbor {target}"
                    )
                size = self.bandwidth.charge(round_index, sender, target, envelope, n)
                if not envelope.is_silent:
                    num_envelopes += 1
                    bits_sent += size
                    # Sent-but-lost: charged and counted like a delivered
                    # envelope (the workers already marked the sender as
                    # having sent), it just never reaches the target's inbox.
                    if drops and faults.message_dropped(round_index, sender, target):
                        continue
                    inboxes.setdefault(target, {})[sender] = envelope

        if tel_on:
            t3 = perf_counter()
            tel.record_span("engine.route", t3 - t2)
            if tracer is not None:
                tracer.add("engine.route", t2, t3, round_index=round_index, mode="sharded")

        # Receive & update, per shard.  A shard that reacted must also update
        # (to drain its activity bookkeeping); one that only received messages
        # is woken by its inboxes.
        per_shard_inboxes: List[Dict[int, Dict[int, Envelope]]] = [{} for _ in self._shards]
        for v, inbox in inboxes.items():
            per_shard_inboxes[self._node_to_shard[v]][v] = inbox
        updating = [
            reacting[idx] or bool(per_shard_inboxes[idx])
            for idx in range(len(self._shards))
        ]
        for idx, (conn, shard_in) in enumerate(zip(self._conns, per_shard_inboxes)):
            if updating[idx]:
                conn.send(("update", (round_index, shard_in)))
        became_inconsistent: List[int] = []
        became_consistent: List[int] = []
        for idx, conn in enumerate(self._conns):
            if not updating[idx]:
                continue
            status, reply = conn.recv()
            if status != "ok":  # pragma: no cover - defensive
                raise RuntimeError(reply)
            if sparse:
                consistency, needs_react = reply
                self._needs_react[idx] = needs_react
            else:
                consistency = reply
            for v, ok in consistency.items():
                if ok:
                    if v in self._inconsistent:
                        self._inconsistent.discard(v)
                        became_consistent.append(v)
                elif v not in self._inconsistent:
                    self._inconsistent.add(v)
                    became_inconsistent.append(v)

        self._last_inconsistent = sorted(self._inconsistent)
        record = self.metrics.record_round_delta(
            round_index=round_index,
            num_changes=len(changes),
            became_inconsistent=became_inconsistent,
            became_consistent=became_consistent,
            num_envelopes=num_envelopes,
            bits_sent=bits_sent,
        )
        if tel_on:
            t4 = perf_counter()
            tel.record_span("engine.deliver", t4 - t3)
            tel.record_span("engine.round", t4 - t_round)
            if tracer is not None:
                tracer.add("engine.deliver", t3, t4, round_index=round_index, mode="sharded")
                tracer.add("engine.round", t_round, t4, round_index=round_index, mode="sharded")
            tel.count("engine.rounds")
            tel.count("engine.envelopes", num_envelopes)
            tel.count("engine.shards_reacting", sum(reacting))
            tel.count("engine.quiescent_shard_skips", len(reacting) - sum(reacting))
            tel.observe("engine.active_set", len(outgoing_all), SIZE_BUCKETS)
            for inbox in inboxes.values():
                tel.observe("engine.inbox_fanout", len(inbox), SIZE_BUCKETS)
            tel.tick()
        return record

    def execute_quiet_round(self) -> RoundRecord:
        """Run one round with no topology changes."""
        return self.execute_round(RoundChanges.empty())

    # ------------------------------------------------------------------ #
    # Queries and lifecycle
    # ------------------------------------------------------------------ #
    @property
    def all_consistent(self) -> bool:
        return not self._last_inconsistent

    @property
    def inconsistent_nodes(self) -> List[int]:
        return list(self._last_inconsistent)

    @property
    def drain_fixpoint(self) -> bool:
        """Mirrors :attr:`RoundEngine.drain_fixpoint` for the sharded scheduler.

        In sparse mode every worker's update reply carries whether its shard
        still has pending activity (dirty nodes or senders); when no shard
        needs a react, a quiet round dispatches no worker ops at all, so no
        node state can change -- the same quiet-round fixpoint the serial
        sparse engine proves, and the drain loops fast-forward on it.  Dense
        mode runs every hook every round and never proves one.
        """
        return self.mode == "sparse" and not any(self._needs_react)

    def query(self, node_id: int, query: Any) -> Any:
        """Forward a query to the worker owning ``node_id`` and return its answer."""
        conn = self._conns[self._node_to_shard[node_id]]
        conn.send(("query", (node_id, query)))
        status, answer = conn.recv()
        if status != "ok":  # pragma: no cover - defensive
            raise RuntimeError(answer)
        return answer

    def state_fingerprints(self) -> Dict[int, str]:
        """Per-node state digests gathered from the workers.

        The differential verification harness compares these against the
        fingerprints of a serial run to prove final-state identity without
        shipping the node objects back to the coordinator.
        """
        for conn in self._conns:
            conn.send(("fingerprint", None))
        fingerprints: Dict[int, str] = {}
        for conn in self._conns:
            status, shard_fp = conn.recv()
            if status != "ok":  # pragma: no cover - defensive
                raise RuntimeError(shard_fp)
            fingerprints.update(shard_fp)
        return fingerprints

    def collect_worker_telemetry(self) -> List[Dict[str, Any]]:
        """Pull each worker's final telemetry snapshot + trace buffer and
        merge them into the coordinator's registry.

        Runs automatically from :meth:`shutdown` (before the stop commands go
        out), and at most once: worker counters/spans/histograms fold into
        ``TELEMETRY`` via :func:`~repro.obs.collect.merge_snapshot_into`,
        worker trace events are absorbed into the live trace ring, and the
        per-stage ``engine.shard_skew.*`` gauges are published.  Returns the
        raw per-worker snapshots (also kept on :attr:`worker_snapshots`).
        """
        if self._closed or not self._workers_instrumented:
            return []
        self._workers_instrumented = False  # merge exactly once
        payloads = []
        try:
            for conn in self._conns:
                conn.send(("telemetry", None))
            for conn in self._conns:
                status, payload = conn.recv()
                if status != "ok":  # pragma: no cover - defensive
                    raise RuntimeError(payload)
                payloads.append(payload)
        except (BrokenPipeError, EOFError):  # pragma: no cover - defensive
            return []
        tel = TELEMETRY
        snapshots: List[Dict[str, Any]] = []
        for snapshot, trace in payloads:
            if snapshot is None:
                continue
            snapshots.append(snapshot)
            if tel.enabled:
                merge_snapshot_into(tel, snapshot)
            if trace is not None and tel.tracer is not None:
                tel.tracer.extend_from_dict(trace)
        if tel.enabled and snapshots:
            record_shard_skew(tel, snapshots)
        self.worker_snapshots = snapshots
        return snapshots

    def shutdown(self) -> None:
        """Terminate the worker processes (collecting their telemetry first)."""
        if self._closed:
            return
        self.collect_worker_telemetry()
        for conn in self._conns:
            try:
                conn.send(("stop", None))
                conn.recv()
                conn.close()
            except (BrokenPipeError, EOFError):  # pragma: no cover - defensive
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._closed = True

    def __enter__(self) -> "ShardedRoundEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
