"""Process-parallel execution of the round engine for large simulations.

The per-node phases of a round (react & send, receive & update) are
embarrassingly parallel: every node only touches its own local state and the
messages addressed to it.  For simulations with many nodes the
:class:`ShardedRoundEngine` partitions the nodes into shards, each owned by a
persistent worker process, and exchanges only the per-round message batches
with the coordinator -- the same communicate-by-message idiom used in
MPI-style programs (each worker behaves like a rank that scatters/gathers one
batch per superstep).

The sharded engine is a drop-in behavioural mirror of
:class:`repro.simulator.rounds.RoundEngine`: given the same adversary schedule
it produces identical metrics, because all cross-node interaction still flows
through the coordinator's ground-truth network and bandwidth policy.  It is
*not* always faster -- for small ``n`` the pickling overhead dominates -- but
it lets the simulator scale past a single core for wide fan-out workloads, and
benchmark E12 measures exactly that trade-off.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .bandwidth import BandwidthPolicy
from .events import RoundChanges
from .messages import Envelope
from .metrics import MetricsCollector, RoundRecord
from .network import DynamicNetwork, NodeIndication
from .node import AlgorithmFactory
from .rounds import MessageTargetError

__all__ = ["ShardedRoundEngine", "shard_nodes"]


def shard_nodes(n: int, num_shards: int) -> List[List[int]]:
    """Partition node ids ``0..n-1`` into ``num_shards`` balanced contiguous shards."""
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    num_shards = min(num_shards, n)
    shards: List[List[int]] = []
    base = n // num_shards
    extra = n % num_shards
    start = 0
    for s in range(num_shards):
        size = base + (1 if s < extra else 0)
        shards.append(list(range(start, start + size)))
        start += size
    return shards


def _worker_loop(
    conn: Any,
    shard: Sequence[int],
    n: int,
    factory: AlgorithmFactory,
) -> None:
    """Entry point of a shard worker process.

    The worker owns the node-algorithm instances of its shard and executes the
    per-node phases on command.  Commands arrive as ``(op, payload)`` tuples on
    the pipe; results are sent back the same way.
    """
    nodes = {v: factory(v, n) for v in shard}
    while True:
        op, payload = conn.recv()
        if op == "stop":
            conn.send(("ok", None))
            conn.close()
            return
        if op == "react":
            round_index, indications = payload
            outgoing: Dict[int, Dict[int, Envelope]] = {}
            for v, algo in nodes.items():
                inserted, deleted = indications.get(v, ((), ()))
                algo.on_topology_change(round_index, inserted, deleted)
            for v, algo in nodes.items():
                out = algo.compose_messages(round_index)
                if out:
                    outgoing[v] = out
            conn.send(("ok", outgoing))
        elif op == "update":
            round_index, inboxes = payload
            for v, algo in nodes.items():
                algo.on_messages(round_index, inboxes.get(v, {}))
            consistency = {v: algo.is_consistent() for v, algo in nodes.items()}
            conn.send(("ok", consistency))
        elif op == "query":
            node_id, query = payload
            conn.send(("ok", nodes[node_id].query(query)))
        elif op == "state_size":
            conn.send(("ok", {v: algo.local_state_size() for v, algo in nodes.items()}))
        else:  # pragma: no cover - defensive
            conn.send(("error", f"unknown op {op!r}"))


class ShardedRoundEngine:
    """A round engine whose node phases run in persistent worker processes.

    Args:
        n: number of nodes.
        algorithm_factory: per-node algorithm factory (must be picklable or
            importable in the workers; with the default ``fork`` start method
            any callable works).
        num_workers: number of shard processes (defaults to CPU count).
        bandwidth: per-link bandwidth policy (kept in the coordinator).
        metrics: metrics collector (kept in the coordinator).
        start_method: multiprocessing start method; ``fork`` keeps closures
            usable as factories and is the default on Linux.
    """

    def __init__(
        self,
        n: int,
        algorithm_factory: AlgorithmFactory,
        *,
        num_workers: Optional[int] = None,
        bandwidth: Optional[BandwidthPolicy] = None,
        metrics: Optional[MetricsCollector] = None,
        start_method: str = "fork",
    ) -> None:
        self.network = DynamicNetwork(n)
        self.bandwidth = bandwidth if bandwidth is not None else BandwidthPolicy()
        self.metrics = metrics if metrics is not None else MetricsCollector()
        workers = num_workers if num_workers is not None else max(1, (os.cpu_count() or 2) - 1)
        self._shards = shard_nodes(n, workers)
        self._node_to_shard: Dict[int, int] = {}
        for idx, shard in enumerate(self._shards):
            for v in shard:
                self._node_to_shard[v] = idx
        ctx = mp.get_context(start_method)
        self._conns = []
        self._procs = []
        for shard in self._shards:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_loop,
                args=(child_conn, shard, n, algorithm_factory),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._last_inconsistent: List[int] = []
        self._closed = False

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #
    def execute_round(self, changes: RoundChanges) -> RoundRecord:
        """Run one round; mirrors :meth:`RoundEngine.execute_round`."""
        if self._closed:
            raise RuntimeError("engine already shut down")
        round_index = self.network.round_index + 1
        n = self.network.n
        indications = self.network.apply_changes(round_index, changes)

        # React & send, per shard.
        per_shard_indications: List[Dict[int, Tuple[tuple, tuple]]] = [
            {} for _ in self._shards
        ]
        for v, ind in indications.items():
            per_shard_indications[self._node_to_shard[v]][v] = (ind.inserted, ind.deleted)
        for conn, shard_ind in zip(self._conns, per_shard_indications):
            conn.send(("react", (round_index, shard_ind)))
        outgoing_all: Dict[int, Dict[int, Envelope]] = {}
        for conn in self._conns:
            status, outgoing = conn.recv()
            if status != "ok":  # pragma: no cover - defensive
                raise RuntimeError(outgoing)
            outgoing_all.update(outgoing)

        # Route messages through the coordinator (validation + bandwidth).
        inboxes: Dict[int, Dict[int, Envelope]] = {}
        num_envelopes = 0
        bits_sent = 0
        for sender, out in outgoing_all.items():
            for target, envelope in out.items():
                if target == sender:
                    raise MessageTargetError(f"node {sender} attempted to message itself")
                if not self.network.has_edge(sender, target):
                    raise MessageTargetError(
                        f"round {round_index}: node {sender} addressed non-neighbor {target}"
                    )
                size = self.bandwidth.charge(round_index, sender, target, envelope, n)
                if not envelope.is_silent:
                    num_envelopes += 1
                    bits_sent += size
                    inboxes.setdefault(target, {})[sender] = envelope

        # Receive & update, per shard.
        per_shard_inboxes: List[Dict[int, Dict[int, Envelope]]] = [{} for _ in self._shards]
        for v, inbox in inboxes.items():
            per_shard_inboxes[self._node_to_shard[v]][v] = inbox
        for conn, shard_in in zip(self._conns, per_shard_inboxes):
            conn.send(("update", (round_index, shard_in)))
        inconsistent: List[int] = []
        for conn in self._conns:
            status, consistency = conn.recv()
            if status != "ok":  # pragma: no cover - defensive
                raise RuntimeError(consistency)
            inconsistent.extend(v for v, ok in consistency.items() if not ok)

        self._last_inconsistent = sorted(inconsistent)
        return self.metrics.record_round(
            round_index=round_index,
            num_changes=len(changes),
            inconsistent_nodes=self._last_inconsistent,
            num_envelopes=num_envelopes,
            bits_sent=bits_sent,
        )

    def execute_quiet_round(self) -> RoundRecord:
        """Run one round with no topology changes."""
        return self.execute_round(RoundChanges.empty())

    # ------------------------------------------------------------------ #
    # Queries and lifecycle
    # ------------------------------------------------------------------ #
    @property
    def all_consistent(self) -> bool:
        return not self._last_inconsistent

    @property
    def inconsistent_nodes(self) -> List[int]:
        return list(self._last_inconsistent)

    def query(self, node_id: int, query: Any) -> Any:
        """Forward a query to the worker owning ``node_id`` and return its answer."""
        conn = self._conns[self._node_to_shard[node_id]]
        conn.send(("query", (node_id, query)))
        status, answer = conn.recv()
        if status != "ok":  # pragma: no cover - defensive
            raise RuntimeError(answer)
        return answer

    def shutdown(self) -> None:
        """Terminate the worker processes."""
        if self._closed:
            return
        for conn in self._conns:
            try:
                conn.send(("stop", None))
                conn.recv()
                conn.close()
            except (BrokenPipeError, EOFError):  # pragma: no cover - defensive
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._closed = True

    def __enter__(self) -> "ShardedRoundEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
