"""The columnar (vectorized) round engine.

:class:`ColumnarRoundEngine` is the third selectable scheduler
(``engine_mode="columnar"``).  It keeps the sparse engine's
activity-proportional bookkeeping -- the active set, the quiescence contract,
the delta-based consistency accounting -- and replaces the two per-message
hot paths:

* **Batched send buffers.**  Algorithms implementing the opt-in
  :class:`~repro.simulator.node.ColumnarProtocol` (currently
  ``triangle``-family and ``robust2hop``) compose one round's entire traffic
  into a shared :class:`SendBuffer` -- a struct-of-arrays of parallel
  ``senders`` / ``targets`` / ``edges`` / ``ops`` / ``patterns`` /
  ``empty_flags`` columns -- instead of allocating an
  :class:`~repro.simulator.messages.Envelope` (plus payload dataclass plus
  per-node dict) per link.  Routing groups rows by receiver in one sweep and
  delivery walks the grouped rows through the exact same message handlers
  the per-envelope path uses.
* **Bulk validation and bandwidth charging.**  Target validation is one
  vectorized gather over the :class:`~repro.simulator.network.AdjacencyMirror`
  bitset (falling back to a packed-key sweep); only when a row fails does the
  engine re-walk the buffer in order to raise the exact per-message error the
  dense engine would.  Bandwidth accounting is computed from three row
  counters in O(1) when no envelope can exceed the budget, with a per-row
  fallback that reproduces violation records and strict-mode raise order
  exactly.

A **quiet-round fast path** recognizes rounds where the active set is
provably empty (no changes, no dirty nodes, nobody sent last round, no fault
resets) and reduces them to one topology tick plus one metrics record --
the dominant round shape in settle/drain-heavy workloads.

Algorithms without a columnar port run the sparse per-node path inside this
same engine, so every registered algorithm works under
``engine_mode="columnar"``.  In *all* cases the engine produces bit-identical
:class:`~repro.simulator.metrics.RoundRecord` streams, traces, bandwidth
accounting, fault statistics and final node state versus the dense and
sparse engines -- pinned by the differential harness exactly as for PR 3's
sparse engine.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Mapping, Optional, Set

from ..obs.telemetry import SIZE_BUCKETS, TELEMETRY
from .bandwidth import BandwidthExceededError, BandwidthPolicy, BandwidthViolation
from .events import RoundChanges
from .messages import Envelope, id_bits
from .metrics import MetricsCollector, RoundRecord
from .network import AdjacencyMirror, DynamicNetwork, NodeIndication
from .node import NodeAlgorithm
from .rounds import MessageTargetError, SparseRoundEngine, _EMPTY_INBOX

__all__ = ["ColumnarRoundEngine", "SendBuffer"]


class SendBuffer:
    """One round's outgoing traffic as a struct of parallel arrays.

    Each row is one **non-silent** envelope: ``senders[i] -> targets[i]``
    carrying ``edges[i]`` / ``ops[i]`` / ``patterns[i]`` as payload (all three
    ``None`` for a payload-free "queue non-empty" control signal) with the
    envelope's ``IsEmpty`` bit in ``empty_flags[i]``.  The three counters let
    the engine price the whole buffer in O(1): a row costs
    ``2 * id_bits(n) + 2`` payload bits when it carries an edge event plus
    one control bit when ``empty_flags`` is ``False``.
    """

    __slots__ = (
        "senders",
        "targets",
        "edges",
        "ops",
        "patterns",
        "empty_flags",
        "payload_rows",
        "flag_rows",
        "payload_flag_rows",
    )

    def __init__(self) -> None:
        self.senders: List[int] = []
        self.targets: List[int] = []
        self.edges: List = []
        self.ops: List = []
        self.patterns: List = []
        self.empty_flags: List[bool] = []
        #: rows carrying a payload (edge event)
        self.payload_rows = 0
        #: rows whose IsEmpty bit is False (cost one control bit)
        self.flag_rows = 0
        #: rows with both (size = payload + control bit, the maximum)
        self.payload_flag_rows = 0

    def clear(self) -> None:
        self.senders.clear()
        self.targets.clear()
        self.edges.clear()
        self.ops.clear()
        self.patterns.clear()
        self.empty_flags.clear()
        self.payload_rows = 0
        self.flag_rows = 0
        self.payload_flag_rows = 0

    def __len__(self) -> int:
        return len(self.senders)

    def row_size_bits(self, i: int, payload_bits: int) -> int:
        """Exact envelope size of row ``i`` (mirrors ``Envelope.size_bits``)."""
        return (payload_bits if self.edges[i] is not None else 0) + (
            0 if self.empty_flags[i] else 1
        )


def _columnar_port(cls) -> bool:
    """Whether ``cls`` can be scheduled through its columnar classmethods.

    The class (or an ancestor) must provide ``columnar_compose`` /
    ``columnar_deliver``, and neither ``compose_messages`` nor
    ``on_messages`` may be overridden *below* the class that provided them --
    a subclass that changes the per-envelope hooks without re-porting the
    batched ones would silently diverge, so it falls back to the per-node
    path instead.
    """
    mro = cls.__mro__
    owner_idx = next(
        (i for i, k in enumerate(mro) if "columnar_compose" in k.__dict__), None
    )
    if owner_idx is None or not any("columnar_deliver" in k.__dict__ for k in mro):
        return False
    for name in ("compose_messages", "on_messages"):
        definer_idx = next(i for i, k in enumerate(mro) if name in k.__dict__)
        if definer_idx < owner_idx:
            return False
    return True


class ColumnarRoundEngine(SparseRoundEngine):
    """Sparse scheduling plus columnar message routing (see module docstring)."""

    #: Row count below which the vectorized bitset validation is skipped
    #: (numpy call overhead exceeds the packed-key sweep for tiny buffers).
    VECTOR_MIN_ROWS = 32

    def __init__(
        self,
        network: DynamicNetwork,
        nodes: Mapping[int, NodeAlgorithm],
        bandwidth: Optional[BandwidthPolicy] = None,
        metrics: Optional[MetricsCollector] = None,
        faults=None,
    ) -> None:
        super().__init__(network, nodes, bandwidth, metrics, faults)
        self._mirror = AdjacencyMirror(network)
        self._buf = SendBuffer()
        # The batched path needs one homogeneous ported class: mixed
        # populations would interleave per-class buffers and break the
        # ascending-sender row order the delivery identity depends on.
        kinds = {type(algo) for algo in self.nodes.values()}
        self._port_cls = None
        if len(kinds) == 1:
            cls = kinds.pop()
            if _columnar_port(cls):
                self._port_cls = cls

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #
    def execute_round(self, changes: RoundChanges) -> RoundRecord:
        round_index = self.network.round_index + 1
        n = self.network.n
        nodes = self.nodes
        tel = TELEMETRY
        tel_on = tel.enabled
        tracer = tel.tracer if tel_on else None
        faults = self.faults
        resets = faults.resets_for_round(round_index) if faults is not None else ()

        # Quiet-round fast path: with no changes, no resets, nothing dirty
        # and nobody having sent last round, the active set is empty -- no
        # hook runs, no inbox fills, no verdict can flip.  The full sparse
        # sweep below would compute exactly that through four set unions and
        # an empty sweep; short-circuit it to one topology tick plus one
        # (identical) metrics record.  Skipped under telemetry so the
        # per-stage spans and histograms stay faithful.
        if (
            not tel_on
            and not changes.events
            and not resets
            and not self._dirty
            and not self._sent_last_round
        ):
            self.network.apply_changes(round_index, changes)
            self._last_touched = set()
            self._last_inconsistent = sorted(self._inconsistent)
            return self.metrics.record_round_delta(
                round_index=round_index,
                num_changes=0,
                became_inconsistent=(),
                became_consistent=(),
                num_envelopes=0,
                bits_sent=0,
            )

        if tel_on:
            t_round = t0 = perf_counter()

        # Stage 1: topology changes and local indications.
        indications = self.network.apply_changes(round_index, changes)
        if resets:
            for v in resets:
                fresh = faults.fresh_node(v, n)
                if self._port_cls is not None and type(fresh) is not self._port_cls:
                    # A fault plan rebuilding nodes as a different class
                    # breaks the homogeneity invariant; degrade permanently
                    # to the per-node path rather than mis-batching.
                    self._port_cls = None
                nodes[v] = fresh
        drops = faults is not None and faults.affects_delivery

        active = sorted(
            set(indications) | self._dirty | self._sent_last_round | set(resets)
        )
        if tel_on:
            t1 = perf_counter()
            tel.record_span("engine.indications", t1 - t0)

        # Stage 2: react.
        for v in active:
            ind = indications.get(v, NodeIndication.empty())
            nodes[v].on_topology_change(round_index, ind.inserted, ind.deleted)
        if tel_on:
            t2 = perf_counter()
            react_s = t2 - t1

        num_envelopes = 0
        bits_sent = 0
        sent_now: Set[int] = set()
        compose_s = 0.0

        if self._port_cls is not None:
            # ---- columnar send: batched compose + bulk route ---- #
            buf = self._buf
            buf.clear()
            if tel_on:
                c0 = perf_counter()
            self._port_cls.columnar_compose(nodes, active, round_index, buf)
            if tel_on:
                compose_s = perf_counter() - c0
            m = len(buf)
            if m:
                mirror = self._mirror
                mirror.sync()
                if not mirror.pairs_all_exist(buf.senders, buf.targets):
                    self._raise_first_bad_target(round_index, buf)
                num_envelopes = m
                sent_now = set(buf.senders)
                payload_bits = 2 * id_bits(n) + 2
                bits_sent = payload_bits * buf.payload_rows + buf.flag_rows
                self._charge_bulk(round_index, buf, payload_bits, n)
            groups = self._group_rows(round_index, buf, drops)
            if tel_on:
                t3 = perf_counter()
                tel.record_span("engine.compute", react_s + compose_s)
                tel.record_span("engine.route", (t3 - t2) - compose_s)

            # Stage 3: receive & update over grouped rows.
            touched = sorted(set(active) | set(groups))
            self._port_cls.columnar_deliver(nodes, round_index, touched, buf, groups)
            if tel_on:
                t4 = perf_counter()
                tel.record_span("engine.deliver", t4 - t3)
            fanouts = [len(rows) for rows in groups.values()] if tel_on else ()
        else:
            # ---- fallback: the sparse per-node path, verbatim ---- #
            inboxes: Dict[int, Dict[int, Envelope]] = {}
            for v in active:
                if tel_on:
                    c0 = perf_counter()
                outgoing = nodes[v].compose_messages(round_index)
                if tel_on:
                    compose_s += perf_counter() - c0
                for target, envelope in outgoing.items():
                    if target == v:
                        raise MessageTargetError(
                            f"node {v} attempted to message itself"
                        )
                    if not self.network.has_edge(v, target):
                        raise MessageTargetError(
                            f"round {round_index}: node {v} addressed non-neighbor {target}"
                        )
                    size = self.bandwidth.charge(round_index, v, target, envelope, n)
                    if not envelope.is_silent:
                        num_envelopes += 1
                        bits_sent += size
                        sent_now.add(v)
                        if drops and faults.message_dropped(round_index, v, target):
                            continue
                        inboxes.setdefault(target, {})[v] = envelope
            if tel_on:
                t3 = perf_counter()
                tel.record_span("engine.compute", react_s + compose_s)
                tel.record_span("engine.route", (t3 - t2) - compose_s)

            touched = sorted(set(active) | set(inboxes))
            for v in touched:
                nodes[v].on_messages(round_index, inboxes.get(v, _EMPTY_INBOX))
            if tel_on:
                t4 = perf_counter()
                tel.record_span("engine.deliver", t4 - t3)
            fanouts = [len(inbox) for inbox in inboxes.values()] if tel_on else ()

        # Stage 4: query window, delta accounting (as in the sparse engine).
        became_inconsistent: List[int] = []
        became_consistent: List[int] = []
        inconsistent = self._inconsistent
        dirty = self._dirty
        for v in touched:
            algo = nodes[v]
            if algo.is_consistent():
                if v in inconsistent:
                    inconsistent.discard(v)
                    became_consistent.append(v)
            elif v not in inconsistent:
                inconsistent.add(v)
                became_inconsistent.append(v)
            if algo.is_quiescent():
                dirty.discard(v)
            else:
                dirty.add(v)

        self._sent_last_round = sent_now
        self._last_touched = set(touched)
        self._last_inconsistent = sorted(inconsistent)
        record = self.metrics.record_round_delta(
            round_index=round_index,
            num_changes=len(changes),
            became_inconsistent=became_inconsistent,
            became_consistent=became_consistent,
            num_envelopes=num_envelopes,
            bits_sent=bits_sent,
        )
        if tel_on:
            t5 = perf_counter()
            tel.record_span("engine.query", t5 - t4)
            tel.record_span("engine.round", t5 - t_round)
            if tracer is not None:
                tracer.add("engine.indications", t0, t1, round_index=round_index, mode="columnar")
                tracer.add("engine.react", t1, t2, round_index=round_index, mode="columnar")
                tracer.add("engine.send", t2, t3, round_index=round_index, mode="columnar")
                tracer.add("engine.deliver", t3, t4, round_index=round_index, mode="columnar")
                tracer.add("engine.query", t4, t5, round_index=round_index, mode="columnar")
                tracer.add("engine.round", t_round, t5, round_index=round_index, mode="columnar")
            tel.count("engine.rounds")
            tel.count("engine.envelopes", num_envelopes)
            tel.count("engine.quiescent_skips", n - len(touched))
            tel.observe("engine.active_set", len(active), SIZE_BUCKETS)
            tel.observe("engine.touched_set", len(touched), SIZE_BUCKETS)
            for fanout in fanouts:
                tel.observe("engine.inbox_fanout", fanout, SIZE_BUCKETS)
            tel.tick()
        return record

    # ------------------------------------------------------------------ #
    # Columnar routing helpers
    # ------------------------------------------------------------------ #
    def _raise_first_bad_target(self, round_index: int, buf: SendBuffer) -> None:
        """Re-walk the buffer in row order and raise the exact dense error."""
        network = self.network
        for v, target in zip(buf.senders, buf.targets):
            if target == v:
                raise MessageTargetError(f"node {v} attempted to message itself")
            if not network.has_edge(v, target):
                raise MessageTargetError(
                    f"round {round_index}: node {v} addressed non-neighbor {target}"
                )
        raise AssertionError("pairs_all_exist reported a bad row but none found")

    def _charge_bulk(
        self, round_index: int, buf: SendBuffer, payload_bits: int, n: int
    ) -> None:
        """Bandwidth accounting for the whole buffer.

        All rows are non-silent and sized by the counters, so when even the
        largest possible row fits the budget the aggregate update is exact
        and O(1).  Otherwise fall back to charging row by row, which
        reproduces the per-violation records and the strict-mode raise on
        the first offending row (dense row order) bit-for-bit.
        """
        bw = self.bandwidth
        if buf.payload_flag_rows:
            max_size = payload_bits + 1
        elif buf.payload_rows:
            max_size = payload_bits
        elif buf.flag_rows:
            max_size = 1
        else:
            max_size = 0
        if max_size <= bw.budget_bits(n):
            bw.total_envelopes += len(buf)
            bw.total_bits += payload_bits * buf.payload_rows + buf.flag_rows
            if max_size > bw.max_observed_bits:
                bw.max_observed_bits = max_size
            return
        for i in range(len(buf)):
            self._charge_row(round_index, buf, i, payload_bits, n)

    def _charge_row(
        self, round_index: int, buf: SendBuffer, i: int, payload_bits: int, n: int
    ) -> int:
        """Charge one row exactly like ``BandwidthPolicy.charge`` would.

        Rebuilding an :class:`Envelope` (plus payload message) per row solely
        for pricing would defeat the columnar layout, so the row is priced
        directly and the policy's accounting/violation steps are replayed in
        the same order.
        """
        size = buf.row_size_bits(i, payload_bits)
        bw = self.bandwidth
        bw.total_envelopes += 1
        bw.total_bits += size
        if size > bw.max_observed_bits:
            bw.max_observed_bits = size
        budget = bw.budget_bits(n)
        if size > budget:
            sender = buf.senders[i]
            receiver = buf.targets[i]
            bw.violations.append(
                BandwidthViolation(
                    round_index=round_index,
                    sender=sender,
                    receiver=receiver,
                    size_bits=size,
                    budget_bits=budget,
                )
            )
            if bw.strict:
                raise BandwidthExceededError(
                    f"round {round_index}: envelope {sender}->{receiver} uses "
                    f"{size} bits, budget is {budget} bits"
                )
        return size

    def _group_rows(
        self, round_index: int, buf: SendBuffer, drops: bool
    ) -> Dict[int, List[int]]:
        """Group surviving row indices by receiver (ascending row order).

        Rows are appended sender-ascending (the active sweep is sorted), so
        each receiver's group lists its senders in exactly the order the
        per-envelope engines insert inbox keys.  Dropped rows were already
        charged and counted; they just never join a group ("sent-but-lost").
        """
        groups: Dict[int, List[int]] = {}
        targets = buf.targets
        if drops:
            dropped = self.faults.message_dropped
            senders = buf.senders
            for i in range(len(targets)):
                if dropped(round_index, senders[i], targets[i]):
                    continue
                group = groups.get(targets[i])
                if group is None:
                    groups[targets[i]] = [i]
                else:
                    group.append(i)
        else:
            for i, t in enumerate(targets):
                group = groups.get(t)
                if group is None:
                    groups[t] = [i]
                else:
                    group.append(i)
        return groups
