"""Simulator substrate for highly dynamic distributed networks.

This package implements the computational model of Censor-Hillel, Kolobov and
Schwartzman (SPAA 2021): a synchronous network on ``n`` nodes that starts
empty, whose edge set an adversary rewrites arbitrarily at the beginning of
every round, with CONGEST-style ``O(log n)``-bit per-link messages and a
query window at the end of every round in which each node must answer from
local state only (or declare itself inconsistent).

The public surface is:

* :class:`DynamicNetwork`, :class:`RoundChanges`, :class:`EdgeInsert`,
  :class:`EdgeDelete` -- the ground-truth dynamic graph and its change events.
* :class:`NodeAlgorithm` -- the per-node algorithm interface.
* :class:`RoundEngine` / :class:`SparseRoundEngine` /
  :class:`ColumnarRoundEngine` / :class:`ShardedRoundEngine` -- dense,
  activity-proportional, vectorized and process-parallel round execution
  (see also :class:`QuiescenceProtocol` and :class:`ColumnarProtocol`).
* :class:`SimulationRunner` / :class:`SimulationResult` -- end-to-end
  orchestration of an adversary against an algorithm.
* :class:`BandwidthPolicy`, :class:`MetricsCollector` -- bandwidth and
  amortized-complexity accounting.
* :class:`Adversary`, :class:`AdversaryView` -- the adversary interface.
* :class:`TopologyTrace` -- trace record / replay.
"""

from .adversary import Adversary, AdversaryView
from .bandwidth import BandwidthExceededError, BandwidthPolicy, BandwidthViolation
from .columnar import ColumnarRoundEngine, SendBuffer
from .events import Edge, EdgeDelete, EdgeInsert, RoundChanges, canonical_edge
from .messages import (
    EdgeDeleteHopMessage,
    EdgeEventMessage,
    EdgeOp,
    Envelope,
    PathInsertMessage,
    PatternMark,
    SnapshotChunkMessage,
    id_bits,
)
from .metrics import MetricsCollector, RoundRecord
from .network import AdjacencyMirror, DynamicNetwork, NodeIndication, TopologyError
from .node import (
    AlgorithmFactory,
    ColumnarProtocol,
    NodeAlgorithm,
    QuiescenceProtocol,
    canonical_state,
    state_fingerprint,
)
from .parallel import ShardedRoundEngine, shard_nodes
from .rounds import (
    ENGINE_MODES,
    MessageTargetError,
    RoundEngine,
    SparseRoundEngine,
    create_engine,
)
from .runner import RoundValidator, SimulationResult, SimulationRunner, drive_engine
from .trace import TopologyTrace, TraceRecordingAdversary, TraceReplayAdversary

__all__ = [
    "AdjacencyMirror",
    "Adversary",
    "AdversaryView",
    "AlgorithmFactory",
    "BandwidthExceededError",
    "BandwidthPolicy",
    "BandwidthViolation",
    "canonical_edge",
    "canonical_state",
    "ColumnarProtocol",
    "ColumnarRoundEngine",
    "create_engine",
    "drive_engine",
    "DynamicNetwork",
    "ENGINE_MODES",
    "Edge",
    "EdgeDelete",
    "EdgeDeleteHopMessage",
    "EdgeEventMessage",
    "EdgeInsert",
    "EdgeOp",
    "Envelope",
    "id_bits",
    "MessageTargetError",
    "MetricsCollector",
    "NodeAlgorithm",
    "NodeIndication",
    "PathInsertMessage",
    "PatternMark",
    "QuiescenceProtocol",
    "RoundChanges",
    "RoundEngine",
    "RoundRecord",
    "RoundValidator",
    "SendBuffer",
    "ShardedRoundEngine",
    "shard_nodes",
    "state_fingerprint",
    "SimulationResult",
    "SimulationRunner",
    "SparseRoundEngine",
    "SnapshotChunkMessage",
    "TopologyError",
    "TopologyTrace",
    "TraceRecordingAdversary",
    "TraceReplayAdversary",
]
