"""The node-algorithm interface of the highly dynamic model.

A distributed dynamic data structure is split among the nodes: node ``v``
holds a part ``DS_v`` which it updates in reaction to the topology indications
it receives and the messages of its neighbors, and which must answer queries
*without any communication* -- either correctly or by declaring itself
inconsistent.

:class:`NodeAlgorithm` captures exactly the per-round hooks of Figure 1 of the
paper:

1. ``on_topology_change`` -- the node is notified of insertions/deletions of
   its incident edges (beginning of the round).
2. ``compose_messages`` -- the *react & send* half-round: the node may send
   one :class:`~repro.simulator.messages.Envelope` to each current neighbor.
3. ``on_messages`` -- the *receive & update* half-round.
4. ``query`` / ``is_consistent`` -- the end-of-round query window, evaluated
   purely on local state.

Implementations live in :mod:`repro.core`; the simulator only relies on this
interface.

Quiescence
----------
The model is highly dynamic but *locally sparse*: in a typical round only a
handful of nodes are touched by changes or messages.  The sparse round engine
(:class:`~repro.simulator.rounds.SparseRoundEngine`) exploits this by skipping
the per-round hooks of nodes that declare themselves **quiescent** through the
:class:`QuiescenceProtocol` extension.  Declaring quiescence is a contract:
while :meth:`NodeAlgorithm.is_quiescent` returns ``True``, running the hooks
with no input must be a no-op, i.e.

* ``on_topology_change(r, (), ())`` leaves the local state unchanged,
* ``compose_messages(r)`` returns no non-silent envelope,
* ``on_messages(r, {})`` leaves the local state unchanged, and
* ``is_consistent()`` keeps returning the same value,

so skipping the node is observationally identical to running it.  The default
implementation returns ``False`` (the node is always active), which preserves
the dense semantics for algorithms that have not been ported.
"""

from __future__ import annotations

import enum
import hashlib
from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable, Dict, Mapping, Protocol, Sequence, runtime_checkable

from .messages import Envelope

__all__ = [
    "NodeAlgorithm",
    "AlgorithmFactory",
    "QuiescenceProtocol",
    "ColumnarProtocol",
    "canonical_state",
    "state_fingerprint",
]


def canonical_state(obj: Any) -> Any:
    """A deterministic, order-independent canonical form of a state value.

    Sets and dicts are sorted (by the repr of their canonicalized elements, so
    mixed-type keys are fine), sequences become tuples, and arbitrary objects
    recurse into their ``__dict__`` under their class name -- which keeps the
    result independent of memory addresses and hash randomization.  Used by
    :func:`state_fingerprint` to compare node state across engines and
    processes.
    """
    if isinstance(obj, enum.Enum):
        # Before the int/str check: an IntEnum/StrEnum member must canonicalize
        # by identity, not by value.  Enum members reach here through queued
        # protocol items (e.g. EdgeOp) whenever an *undrained* node is
        # fingerprinted; their vars() is a mappingproxy, so without this case
        # they would fail the default-repr check below.
        return ("enum", type(obj).__name__, obj.name)
    if isinstance(obj, (str, int, float, bool, bytes, type(None))):
        return obj
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted((repr(canonical_state(x)) for x in obj))))
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(
                sorted(
                    (repr(canonical_state(k)), repr(canonical_state(v)))
                    for k, v in obj.items()
                )
            ),
        )
    if isinstance(obj, (list, tuple, deque)):
        return ("seq", tuple(canonical_state(x) for x in obj))
    if hasattr(obj, "__dict__"):
        return ("obj", type(obj).__name__, canonical_state(vars(obj)))
    rendered = repr(obj)
    if " object at 0x" in rendered:
        # A default repr embeds the memory address, which differs between the
        # coordinator and forked shard workers and would turn an identical
        # run into a spurious final-state divergence.  Fail loudly instead.
        raise TypeError(
            f"cannot canonicalize {type(obj).__name__} (no __dict__ and only a "
            "default repr); give it a deterministic __repr__ or state attributes"
        )
    return ("repr", rendered)


def state_fingerprint(obj: Any) -> str:
    """A stable digest of an object's full local state.

    Two objects of the same class whose (recursively canonicalized) attribute
    dictionaries coincide get the same fingerprint, regardless of process,
    hash seed, or set/dict insertion order.  The differential verification
    harness uses this to assert final-node-state identity across round
    engines without shipping whole node objects around.
    """
    payload = repr((type(obj).__name__, canonical_state(vars(obj))))
    return hashlib.sha1(payload.encode()).hexdigest()


@runtime_checkable
class QuiescenceProtocol(Protocol):
    """The activity self-report consumed by the sparse round engine.

    An object satisfying this protocol can tell the engine that, absent new
    topology indications or incoming messages, running its round hooks would
    be a no-op (see the module docstring for the exact contract).  Every
    :class:`NodeAlgorithm` satisfies it structurally via the conservative
    default; algorithms override :meth:`is_quiescent` to unlock
    activity-proportional scheduling.
    """

    def is_quiescent(self) -> bool:
        """Whether skipping this node's hooks is currently a no-op."""
        ...


@runtime_checkable
class ColumnarProtocol(Protocol):
    """The batched send/receive surface consumed by the columnar round engine.

    An algorithm class implementing this protocol lets the
    :class:`~repro.simulator.columnar.ColumnarRoundEngine` run the *react &
    send* and *receive & update* half-rounds over **all** of the class's
    active nodes at once, writing rows into a shared per-round
    :class:`~repro.simulator.columnar.SendBuffer` (struct-of-arrays: parallel
    ``senders`` / ``targets`` / ``edges`` / ``ops`` / ``patterns`` /
    ``empty_flags`` columns) instead of allocating one
    :class:`~repro.simulator.messages.Envelope` per link.  Per-node state
    stays authoritative in the instances -- queries, consistency checks and
    :func:`state_fingerprint` are untouched -- only the message traffic is
    columnar.

    Contract (pinned by the differential identity gate):

    * ``columnar_compose`` must mutate each sender exactly as
      ``compose_messages`` would (queue dequeues included) and append one row
      per **non-silent** envelope, in the same per-sender target order that
      ``compose_messages`` iterates, with the row's ``edge``/``op``/
      ``pattern`` matching the envelope payload (``None`` columns for a
      payload-free "queue non-empty" signal) and ``empty_flag`` matching the
      envelope's ``is_empty`` bit.
    * ``columnar_deliver`` must be observationally identical to calling
      ``on_messages`` per receiver with an inbox holding exactly the rows of
      ``groups[receiver]`` keyed by sender in row order.  Receivers without a
      group entry received nothing and must still run their empty-inbox
      update.

    Classes not implementing the protocol fall back to the sparse per-node
    path inside the same engine, so every registered algorithm still runs
    under ``engine_mode="columnar"``.
    """

    @classmethod
    def columnar_compose(cls, nodes, senders, round_index, buf) -> None:
        """Batched ``compose_messages`` over ``senders`` (ascending ids)."""
        ...

    @classmethod
    def columnar_deliver(cls, nodes, round_index, receivers, buf, groups) -> None:
        """Batched ``on_messages`` over ``receivers`` (ascending ids)."""
        ...


class NodeAlgorithm(ABC):
    """Abstract base class for the per-node part of a distributed dynamic DS.

    Attributes:
        node_id: identifier of this node (``0 .. n-1``).
        n: total number of nodes in the network (known to all nodes, as usual
            in the CONGEST model).
    """

    def __init__(self, node_id: int, n: int) -> None:
        self.node_id = node_id
        self.n = n

    # ------------------------------------------------------------------ #
    # Round hooks (called by the round engine)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def on_topology_change(
        self, round_index: int, inserted: Sequence[int], deleted: Sequence[int]
    ) -> None:
        """React to this round's indications about incident edges.

        Args:
            round_index: index of the current round ``i``.
            inserted: neighbors gained at the beginning of round ``i``.
            deleted: neighbors lost at the beginning of round ``i``.

        Called exactly once per round for every node, possibly with empty
        sequences if the node was not touched by any change.
        """

    @abstractmethod
    def compose_messages(self, round_index: int) -> Dict[int, Envelope]:
        """Produce the envelopes to send this round, keyed by neighbor id.

        The engine delivers an envelope only if the target is a *current*
        neighbor (an edge of ``G_i``); addressing a non-neighbor is a
        programming error and the engine rejects it.  Returning an empty dict
        (or omitting a neighbor) is interpreted by that neighbor as a silent
        envelope, i.e. ``IsEmpty = true``.
        """

    @abstractmethod
    def on_messages(self, round_index: int, received: Mapping[int, Envelope]) -> None:
        """Process the envelopes received from neighbors this round.

        ``received`` contains an entry for every *current* neighbor that sent
        a non-silent envelope.  Silence from a neighbor must be interpreted as
        ``IsEmpty = true`` per the paper's convention; implementations that
        need to notice silence explicitly should combine this mapping with
        their own adjacency knowledge.
        """

    # ------------------------------------------------------------------ #
    # Query window (no communication allowed)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def is_consistent(self) -> bool:
        """Whether the local data structure currently declares itself consistent."""

    @abstractmethod
    def query(self, query: Any) -> Any:
        """Answer a query from local state only.

        The concrete query and answer types are defined by each problem in
        :mod:`repro.core.queries`.  Implementations must not access any other
        node or the network.
        """

    # ------------------------------------------------------------------ #
    # Quiescence (see QuiescenceProtocol)
    # ------------------------------------------------------------------ #
    def is_quiescent(self) -> bool:
        """Whether skipping this node's hooks is currently a no-op.

        The conservative default keeps unported algorithms on the dense
        schedule: a node that never declares quiescence is visited every
        round, exactly as :class:`~repro.simulator.rounds.RoundEngine` would.
        Overrides must honour the contract in the module docstring.
        """
        return False

    # ------------------------------------------------------------------ #
    # Optional introspection
    # ------------------------------------------------------------------ #
    def local_state_size(self) -> int:
        """A rough count of items held locally (for memory profiling)."""
        return 0

    def state_fingerprint(self) -> str:
        """A stable digest of this node's full local state (see :func:`state_fingerprint`)."""
        return state_fingerprint(self)


#: A factory building the algorithm instance for one node.  The runner calls
#: ``factory(node_id, n)`` once per node before the simulation starts.
AlgorithmFactory = Callable[[int, int], NodeAlgorithm]
