"""The dynamic communication graph maintained by the simulator.

:class:`DynamicNetwork` is the *ground truth* evolving graph ``G_i`` of the
highly dynamic model: a set of nodes fixed in advance and an edge set that the
adversary rewrites at the beginning of every round.  The network also tracks
the true insertion time ``t_e`` of every edge -- the latest round in which the
edge was inserted -- which is the quantity the paper's *robust neighborhood*
definitions are phrased in terms of (Appendix A of the paper).  True
timestamps are **never** made available to the distributed algorithms through
messages; they exist for the benefit of the adversary, the oracle and the
analysis code, exactly like in the paper where they are "defined only for the
sake of analysis".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Set

from .events import Edge, EdgeDelete, EdgeInsert, RoundChanges, TopologyEvent, canonical_edge

try:  # numpy backs the columnar mirror; the core simulator runs without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

__all__ = ["NodeIndication", "DynamicNetwork", "AdjacencyMirror", "TopologyError"]


class TopologyError(ValueError):
    """Raised when a round batch is inconsistent with the current graph.

    Examples: inserting an edge that already exists, deleting an edge that
    does not exist, or referring to a node outside ``range(n)``.
    """


@dataclass(frozen=True)
class NodeIndication:
    """The local indication a single node receives at the start of a round.

    Per the model, every node is notified of the topology changes *it is part
    of*, i.e. of insertions and deletions of edges incident to it.

    Attributes:
        inserted: neighbors gained this round (other endpoint of inserted edges).
        deleted: neighbors lost this round (other endpoint of deleted edges).
    """

    inserted: tuple[int, ...]
    deleted: tuple[int, ...]

    @property
    def is_empty(self) -> bool:
        return not self.inserted and not self.deleted

    @classmethod
    def empty(cls) -> "NodeIndication":
        return cls((), ())


class DynamicNetwork:
    """The evolving ground-truth graph of a highly dynamic network.

    The graph starts empty on ``n`` nodes (identified ``0 .. n-1``).  Each
    call to :meth:`apply_changes` advances the graph by one round of
    adversarial topology changes and returns the per-node indications.

    The class keeps, per edge:

    * whether the edge currently exists,
    * its true insertion time ``t_e`` (latest round it was inserted; ``-1``
      for edges that were never inserted), and
    * its latest deletion time (for analysis purposes).

    Attributes:
        n: number of nodes.
        round_index: index of the last round whose changes were applied
            (``0`` before any changes).
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("the network must have at least one node")
        self.n = int(n)
        self.round_index = 0
        self._adj: Dict[int, Set[int]] = {v: set() for v in range(self.n)}
        self._edges: Set[Edge] = set()
        self._insertion_time: Dict[Edge, int] = {}
        self._deletion_time: Dict[Edge, int] = {}
        self._total_changes = 0
        # Cached frozen snapshots, invalidated by apply_changes.  The round
        # engines and the adversary view read these every round, so rebuilding
        # a fresh frozenset per call would make every round O(n + m) even when
        # nothing changed.
        self._edges_snapshot: Optional[FrozenSet[Edge]] = None
        self._neighbor_snapshots: Dict[int, FrozenSet[int]] = {}
        # The most recent applied batch (and its round), so incremental
        # observers (the ground-truth oracle) can pay per change instead of
        # diffing the full edge set every round.
        self._last_changes: Optional[RoundChanges] = None
        self._last_changes_round = 0

    # ------------------------------------------------------------------ #
    # Read access
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> range:
        """All node identifiers."""
        return range(self.n)

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The current edge set (a frozen snapshot, cached between changes)."""
        if self._edges_snapshot is None:
            self._edges_snapshot = frozenset(self._edges)
        return self._edges_snapshot

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def total_changes(self) -> int:
        """Total number of topology changes applied so far."""
        return self._total_changes

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` currently exists."""
        return canonical_edge(u, v) in self._edges

    def neighbors(self, v: int) -> FrozenSet[int]:
        """The current neighbors of ``v`` (a frozen snapshot, cached between changes)."""
        snapshot = self._neighbor_snapshots.get(v)
        if snapshot is None:
            self._check_node(v)
            snapshot = frozenset(self._adj[v])
            self._neighbor_snapshots[v] = snapshot
        return snapshot

    def degree(self, v: int) -> int:
        self._check_node(v)
        return len(self._adj[v])

    def edges_incident(self, nodes) -> FrozenSet[Edge]:
        """Every current edge with at least one endpoint in ``nodes``.

        The edge set a crashed (or regionally failed) node tears down: the
        fault overlay masks exactly these edges out of the physical graph,
        and tests assert against the same query.  Computed from the adjacency
        lists, so the cost scales with the failed nodes' degrees rather than
        the whole edge set.
        """
        out: Set[Edge] = set()
        for v in nodes:
            self._check_node(v)
            for u in self._adj[v]:
                out.add(canonical_edge(u, v))
        return frozenset(out)

    def insertion_time(self, u: int, v: int) -> int:
        """True (latest) insertion time ``t_e`` of edge ``{u, v}``.

        Returns ``-1`` if the edge was never inserted.  The value is defined
        also for edges that were inserted and later deleted.
        """
        return self._insertion_time.get(canonical_edge(u, v), -1)

    def deletion_time(self, u: int, v: int) -> int:
        """Latest deletion time of edge ``{u, v}`` (``-1`` if never deleted)."""
        return self._deletion_time.get(canonical_edge(u, v), -1)

    def insertion_times(self) -> Mapping[Edge, int]:
        """Mapping of *current* edges to their true insertion times."""
        return {e: self._insertion_time[e] for e in self._edges}

    def snapshot(self) -> FrozenSet[Edge]:
        """Alias of :attr:`edges`, for symmetry with trace recording."""
        return self.edges

    @property
    def last_changes(self) -> Optional[RoundChanges]:
        """The most recent batch applied via :meth:`apply_changes` (or ``None``).

        Together with :attr:`total_changes` this lets an incremental observer
        recover the exact delta since its previous observation without a full
        edge-set diff whenever it observed the preceding round.
        """
        return self._last_changes

    @property
    def last_changes_round(self) -> int:
        """The round whose start :attr:`last_changes` was applied at."""
        return self._last_changes_round

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def apply_changes(
        self, round_index: int, changes: RoundChanges
    ) -> Dict[int, NodeIndication]:
        """Apply one round's topology changes and return node indications.

        Args:
            round_index: the 1-based index of the round whose start the
                changes belong to.  Rounds must be applied in strictly
                increasing order.
            changes: the batch of events.

        Returns:
            A dict mapping every node touched by at least one change to its
            :class:`NodeIndication`.  Untouched nodes are absent.

        Raises:
            TopologyError: if the batch is invalid for the current graph.
        """
        if round_index <= self.round_index:
            raise TopologyError(
                f"round indices must be strictly increasing: got {round_index} "
                f"after {self.round_index}"
            )
        # Validate the entire batch before mutating anything, so a failed
        # batch leaves the graph untouched.
        for ev in changes:
            self._validate_event(ev)

        inserted_by_node: Dict[int, list[int]] = {}
        deleted_by_node: Dict[int, list[int]] = {}
        if len(changes) > 0:
            self._edges_snapshot = None
        for ev in changes:
            a, b = ev.edge
            self._neighbor_snapshots.pop(a, None)
            self._neighbor_snapshots.pop(b, None)
            if ev.is_insert:
                self._edges.add(ev.edge)
                self._adj[a].add(b)
                self._adj[b].add(a)
                self._insertion_time[ev.edge] = round_index
                inserted_by_node.setdefault(a, []).append(b)
                inserted_by_node.setdefault(b, []).append(a)
            else:
                self._edges.discard(ev.edge)
                self._adj[a].discard(b)
                self._adj[b].discard(a)
                self._deletion_time[ev.edge] = round_index
                deleted_by_node.setdefault(a, []).append(b)
                deleted_by_node.setdefault(b, []).append(a)
            self._total_changes += 1

        self.round_index = round_index
        self._last_changes = changes
        self._last_changes_round = round_index

        indications: Dict[int, NodeIndication] = {}
        for node in set(inserted_by_node) | set(deleted_by_node):
            indications[node] = NodeIndication(
                inserted=tuple(sorted(inserted_by_node.get(node, ()))),
                deleted=tuple(sorted(deleted_by_node.get(node, ()))),
            )
        return indications

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _check_node(self, v: int) -> None:
        if not (0 <= v < self.n):
            raise TopologyError(f"node {v} outside range(0, {self.n})")

    def _validate_event(self, ev: TopologyEvent) -> None:
        a, b = ev.edge
        self._check_node(a)
        self._check_node(b)
        exists = ev.edge in self._edges
        if ev.is_insert and exists:
            raise TopologyError(f"cannot insert existing edge {ev.edge}")
        if ev.is_delete and not exists:
            raise TopologyError(f"cannot delete missing edge {ev.edge}")

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def copy(self) -> "DynamicNetwork":
        """Deep copy of the network state (used by the oracle and tests)."""
        clone = DynamicNetwork(self.n)
        clone.round_index = self.round_index
        clone._adj = {v: set(neigh) for v, neigh in self._adj.items()}
        clone._edges = set(self._edges)
        clone._insertion_time = dict(self._insertion_time)
        clone._deletion_time = dict(self._deletion_time)
        clone._total_changes = self._total_changes
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicNetwork(n={self.n}, round={self.round_index}, "
            f"edges={len(self._edges)}, changes={self._total_changes})"
        )


class AdjacencyMirror:
    """Array-backed adjacency view of a :class:`DynamicNetwork`.

    The columnar round engine validates and routes whole per-round send
    buffers at once; for that it needs adjacency in a shape that supports
    bulk membership tests instead of per-edge ``frozenset`` lookups.  The
    mirror maintains, incrementally from :attr:`DynamicNetwork.last_changes`:

    * ``_edge_keys`` -- the current edge set as packed integers
      ``min * n + max`` (one set lookup per pair, no tuple allocation);
    * ``degrees`` -- a numpy ``int64`` degree vector;
    * a packed ``uint64`` adjacency bitset (both directions) for networks up
      to :data:`BITSET_MAX_N` nodes, which lets :meth:`pairs_all_exist`
      answer "does every (sender, target) pair exist?" with a handful of
      vectorized gathers.

    :meth:`sync` applies exactly the last applied batch when the mirror saw
    the preceding round, and falls back to a full rebuild otherwise, so it
    can be attached to a network at any point in its life.  Without numpy the
    mirror degrades to the packed-key set (still allocation-free per lookup).
    """

    #: Largest ``n`` for which the dense bitset (``n * n`` bits) is kept.
    BITSET_MAX_N = 4096

    def __init__(self, network: DynamicNetwork) -> None:
        self.network = network
        self.n = network.n
        self._words = (self.n + 63) // 64
        self._synced_changes = -1
        self._edge_keys: Set[int] = set()
        self.degrees = _np.zeros(self.n, dtype=_np.int64) if _np is not None else None
        self._bits = (
            _np.zeros(self.n * self._words, dtype=_np.uint64)
            if _np is not None and self.n <= self.BITSET_MAX_N
            else None
        )
        self._rebuild()

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def sync(self) -> None:
        """Bring the mirror up to date with the network.

        Incremental when exactly the network's last applied batch is unseen
        (the common case: the engine syncs once per round, right after the
        topology stage); otherwise rebuilds from the full edge set.
        """
        net = self.network
        total = net.total_changes
        if total == self._synced_changes:
            return
        last = net.last_changes
        if last is not None and self._synced_changes + len(last) == total:
            for ev in last:
                a, b = ev.edge
                if ev.is_insert:
                    self._add_edge(a, b)
                else:
                    self._remove_edge(a, b)
        else:
            self._rebuild()
        self._synced_changes = total

    def _rebuild(self) -> None:
        self._edge_keys.clear()
        if self.degrees is not None:
            self.degrees[:] = 0
        if self._bits is not None:
            self._bits[:] = 0
        for a, b in self.network.edges:
            self._add_edge(a, b)
        self._synced_changes = self.network.total_changes

    def _add_edge(self, a: int, b: int) -> None:
        self._edge_keys.add((a * self.n + b) if a < b else (b * self.n + a))
        if self.degrees is not None:
            self.degrees[a] += 1
            self.degrees[b] += 1
        if self._bits is not None:
            bits = self._bits
            bits[a * self._words + (b >> 6)] |= _np.uint64(1 << (b & 63))
            bits[b * self._words + (a >> 6)] |= _np.uint64(1 << (a & 63))

    def _remove_edge(self, a: int, b: int) -> None:
        self._edge_keys.discard((a * self.n + b) if a < b else (b * self.n + a))
        if self.degrees is not None:
            self.degrees[a] -= 1
            self.degrees[b] -= 1
        if self._bits is not None:
            bits = self._bits
            bits[a * self._words + (b >> 6)] &= _np.uint64(~(1 << (b & 63)) & (2**64 - 1))
            bits[b * self._words + (a >> 6)] &= _np.uint64(~(1 << (a & 63)) & (2**64 - 1))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists (packed-key lookup)."""
        key = (u * self.n + v) if u < v else (v * self.n + u)
        return key in self._edge_keys

    def pairs_all_exist(self, senders: Sequence[int], targets: Sequence[int]) -> bool:
        """Whether every ``(senders[i], targets[i])`` pair is a current edge.

        The happy-path bulk check of the columnar engine's validation stage:
        one vectorized gather over the bitset when available, a packed-key
        sweep otherwise.  Self-pairs and out-of-range ids report ``False``
        (the caller re-walks the rows in order to raise the exact error).
        """
        m = len(senders)
        if m == 0:
            return True
        self.sync()
        if self._bits is not None and m >= 32:
            s = _np.fromiter(senders, dtype=_np.int64, count=m)
            t = _np.fromiter(targets, dtype=_np.int64, count=m)
            if ((s < 0) | (s >= self.n) | (t < 0) | (t >= self.n)).any():
                return False
            words = self._bits[s * self._words + (t >> 6)]
            return bool(((words >> (t & 63).astype(_np.uint64)) & _np.uint64(1)).all())
        n = self.n
        keys = self._edge_keys
        for u, v in zip(senders, targets):
            if ((u * n + v) if u < v else (v * n + u)) not in keys:
                return False
        return True

    def degree(self, v: int) -> int:
        """Current degree of ``v`` (mirrors :meth:`DynamicNetwork.degree`)."""
        if self.degrees is not None:
            return int(self.degrees[v])
        return self.network.degree(v)
