"""Amortized-complexity accounting for highly dynamic simulations.

The paper's complexity measure is the *amortized round complexity*: for every
round ``i``, the number of rounds up to ``i`` in which at least one node holds
an inconsistent data structure, divided by the number of topology changes that
occurred up to round ``i``.  :class:`MetricsCollector` tracks exactly this
ratio, along with per-node inconsistency counts, message and bit counters, and
a per-round log that benchmarks and EXPERIMENTS.md draw their tables from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

__all__ = ["RoundRecord", "MetricsCollector"]


@dataclass(frozen=True)
class RoundRecord:
    """Summary of a single simulated round."""

    round_index: int
    num_changes: int
    num_inconsistent_nodes: int
    num_envelopes: int
    bits_sent: int

    @property
    def has_inconsistency(self) -> bool:
        return self.num_inconsistent_nodes > 0


@dataclass
class MetricsCollector:
    """Collects the quantities bounded by the paper's theorems.

    Attributes:
        rounds: per-round records, in execution order.
        per_node_inconsistent_rounds: for each node, the number of rounds in
            which it declared itself inconsistent.
    """

    rounds: List[RoundRecord] = field(default_factory=list)
    per_node_inconsistent_rounds: Dict[int, int] = field(default_factory=dict)
    _total_changes: int = 0
    _inconsistent_rounds: int = 0
    _total_envelopes: int = 0
    _total_bits: int = 0
    # The live inconsistent set, maintained by delta so engines that only
    # visit active nodes never have to re-scan the full node set.
    _current_inconsistent: Set[int] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_round(
        self,
        round_index: int,
        num_changes: int,
        inconsistent_nodes: List[int],
        num_envelopes: int,
        bits_sent: int,
    ) -> RoundRecord:
        """Record the outcome of one round and return its summary record.

        Thin wrapper over :meth:`record_round_delta`: the full inconsistent
        list is diffed against the live set, so both entry points share one
        accounting implementation and can never drift apart.
        """
        new = set(inconsistent_nodes)
        current = self._current_inconsistent
        return self.record_round_delta(
            round_index=round_index,
            num_changes=num_changes,
            became_inconsistent=new - current,
            became_consistent=current - new,
            num_envelopes=num_envelopes,
            bits_sent=bits_sent,
        )

    def record_round_delta(
        self,
        round_index: int,
        num_changes: int,
        became_inconsistent: Iterable[int],
        became_consistent: Iterable[int],
        num_envelopes: int,
        bits_sent: int,
    ) -> RoundRecord:
        """Record one round given only the *change* in the inconsistent set.

        The collector maintains the live inconsistent set itself, so an
        activity-proportional engine can report just the nodes whose
        consistency flipped this round instead of re-scanning all ``n`` nodes.
        Produces exactly the same :class:`RoundRecord` and per-node accounting
        as :meth:`record_round` with the full list.
        """
        current = self._current_inconsistent
        current.difference_update(became_consistent)
        current.update(became_inconsistent)
        record = RoundRecord(
            round_index=round_index,
            num_changes=num_changes,
            num_inconsistent_nodes=len(current),
            num_envelopes=num_envelopes,
            bits_sent=bits_sent,
        )
        self.rounds.append(record)
        self._total_changes += num_changes
        self._total_envelopes += num_envelopes
        self._total_bits += bits_sent
        if current:
            self._inconsistent_rounds += 1
        for node in current:
            self.per_node_inconsistent_rounds[node] = (
                self.per_node_inconsistent_rounds.get(node, 0) + 1
            )
        return record

    @property
    def current_inconsistent_nodes(self) -> Set[int]:
        """The inconsistent set at the end of the last recorded round (a copy)."""
        return set(self._current_inconsistent)

    # ------------------------------------------------------------------ #
    # The paper's complexity measures
    # ------------------------------------------------------------------ #
    @property
    def total_changes(self) -> int:
        """Total number of topology changes applied so far."""
        return self._total_changes

    @property
    def inconsistent_rounds(self) -> int:
        """Number of rounds with at least one inconsistent node (global measure)."""
        return self._inconsistent_rounds

    @property
    def rounds_executed(self) -> int:
        return len(self.rounds)

    @property
    def total_envelopes(self) -> int:
        return self._total_envelopes

    @property
    def total_bits(self) -> int:
        return self._total_bits

    def amortized_round_complexity(self) -> float:
        """Inconsistent rounds divided by topology changes (the paper's measure).

        Returns ``0.0`` when no topology change has happened yet (in that case
        no algorithm can be charged; the paper's measure is only defined once
        changes occur and our algorithms are consistent on the empty prefix).
        """
        if self._total_changes == 0:
            return 0.0
        return self._inconsistent_rounds / self._total_changes

    def amortized_bits_per_change(self) -> float:
        """Total bits transmitted divided by topology changes."""
        if self._total_changes == 0:
            return 0.0
        return self._total_bits / self._total_changes

    def worst_node_inconsistent_rounds(self) -> int:
        """The maximum, over nodes, of the number of inconsistent rounds."""
        if not self.per_node_inconsistent_rounds:
            return 0
        return max(self.per_node_inconsistent_rounds.values())

    def running_amortized_complexity(self) -> List[float]:
        """The amortized complexity after each round (a prefix-wise curve).

        Useful for checking that the ratio is bounded *for every* ``i`` as the
        paper requires, not only at the end of the run.
        """
        curve: List[float] = []
        changes = 0
        inconsistent = 0
        for rec in self.rounds:
            changes += rec.num_changes
            if rec.has_inconsistency:
                inconsistent += 1
            curve.append(inconsistent / changes if changes else 0.0)
        return curve

    def max_running_amortized_complexity(self) -> float:
        """The supremum over rounds of the prefix-wise amortized complexity."""
        curve = [c for c in self.running_amortized_complexity() if c > 0.0]
        return max(curve) if curve else 0.0

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, float]:
        """Aggregate statistics as a flat dict (used by benches and the CLI)."""
        return {
            "rounds_executed": float(self.rounds_executed),
            "total_changes": float(self.total_changes),
            "inconsistent_rounds": float(self.inconsistent_rounds),
            "amortized_round_complexity": self.amortized_round_complexity(),
            "max_running_amortized_complexity": self.max_running_amortized_complexity(),
            "total_envelopes": float(self.total_envelopes),
            "total_bits": float(self.total_bits),
            "amortized_bits_per_change": self.amortized_bits_per_change(),
            "worst_node_inconsistent_rounds": float(
                self.worst_node_inconsistent_rounds()
            ),
        }

    def tail_consistent_rounds(self) -> int:
        """Length of the suffix of rounds with no inconsistent node."""
        count = 0
        for rec in reversed(self.rounds):
            if rec.has_inconsistency:
                break
            count += 1
        return count
