"""Per-link bandwidth accounting for the CONGEST-style restriction.

The model allows each node to send ``O(log n)`` bits over each incident link
per round.  :class:`BandwidthPolicy` turns that asymptotic allowance into a
concrete per-link budget ``factor * ceil(log2 n)`` bits and checks every
envelope against it.  Two enforcement modes are provided:

* ``strict=True`` (default) raises :class:`BandwidthExceededError` as soon as
  any envelope exceeds the budget -- used by tests to prove that the paper's
  algorithms really fit in logarithmic bandwidth.
* ``strict=False`` merely records violations -- used by baselines that
  intentionally exceed the budget (e.g. the unbounded-bandwidth strawman) so
  that benchmarks can report *how much* extra bandwidth they need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .messages import Envelope, id_bits

__all__ = ["BandwidthExceededError", "BandwidthViolation", "BandwidthPolicy"]


class BandwidthExceededError(RuntimeError):
    """An envelope exceeded the per-link per-round bandwidth budget."""


@dataclass(frozen=True)
class BandwidthViolation:
    """Record of a single budget violation (non-strict mode)."""

    round_index: int
    sender: int
    receiver: int
    size_bits: int
    budget_bits: int


@dataclass
class BandwidthPolicy:
    """Concrete per-link bandwidth budget and its enforcement.

    Attributes:
        factor: the hidden constant of the ``O(log n)`` allowance.  The
            default of 8 comfortably fits the largest constant-size message of
            the paper's algorithms (a 4-identifier path plus marks) while
            still being logarithmic.
        strict: whether violations raise (``True``) or are recorded
            (``False``).
    """

    factor: int = 8
    strict: bool = True
    violations: List[BandwidthViolation] = field(default_factory=list)
    max_observed_bits: int = 0
    total_bits: int = 0
    total_envelopes: int = 0

    def budget_bits(self, n: int) -> int:
        """The per-link per-round budget in bits for an ``n``-node network."""
        return self.factor * id_bits(n)

    def charge(
        self, round_index: int, sender: int, receiver: int, envelope: Envelope, n: int
    ) -> int:
        """Account for one envelope and enforce the budget.

        Returns the envelope size in bits.  Silent envelopes (no payload, all
        control flags at their default "true" values) cost zero bits and are
        not counted as transmissions.
        """
        size = envelope.size_bits(n)
        if envelope.is_silent:
            return 0
        self.total_envelopes += 1
        self.total_bits += size
        if size > self.max_observed_bits:
            self.max_observed_bits = size
        budget = self.budget_bits(n)
        if size > budget:
            violation = BandwidthViolation(
                round_index=round_index,
                sender=sender,
                receiver=receiver,
                size_bits=size,
                budget_bits=budget,
            )
            self.violations.append(violation)
            if self.strict:
                raise BandwidthExceededError(
                    f"round {round_index}: envelope {sender}->{receiver} uses "
                    f"{size} bits, budget is {budget} bits"
                )
        return size

    @property
    def num_violations(self) -> int:
        return len(self.violations)

    def summary(self, n: int) -> Dict[str, int]:
        """Aggregate bandwidth statistics for reporting."""
        return {
            "budget_bits": self.budget_bits(n),
            "max_observed_bits": self.max_observed_bits,
            "total_bits": self.total_bits,
            "total_envelopes": self.total_envelopes,
            "violations": self.num_violations,
        }
